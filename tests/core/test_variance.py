"""Tests for the delta-method variance estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    bootstrap_estimate,
    estimate_sizes_induced,
    induced_size_std,
    ratio_variance,
)
from repro.exceptions import EstimationError
from repro.generators import gnm
from repro.graph import CategoryPartition
from repro.sampling import (
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
)


class TestRatioVariance:
    def test_constant_ratio_zero_variance(self):
        z = np.ones(50)
        y = 0.3 * z
        assert ratio_variance(y, z) == pytest.approx(0.0)

    def test_matches_monte_carlo_for_mean(self):
        """Denominator == 1 degenerates to the variance of a mean."""
        rng = np.random.default_rng(0)
        y = rng.normal(2.0, 1.0, size=2000)
        z = np.ones(2000)
        expected = y.var(ddof=1) / 2000
        assert ratio_variance(y, z) == pytest.approx(expected, rel=1e-9)

    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        y = rng.random(100)
        z = rng.random(100) + 0.5
        a = ratio_variance(y, z)
        b = ratio_variance(5 * y, 5 * z)
        assert a == pytest.approx(b)

    def test_too_short_rejected(self):
        with pytest.raises(EstimationError):
            ratio_variance(np.array([1.0]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            ratio_variance(np.ones(3), np.ones(4))

    def test_zero_denominator_rejected(self):
        with pytest.raises(EstimationError):
            ratio_variance(np.ones(3), np.zeros(3))


class TestInducedSizeStd:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = gnm(800, 4000, rng=0)
        partition = CategoryPartition(np.arange(800) % 4)
        return graph, partition

    def test_agrees_with_bootstrap_uis(self, setup):
        graph, partition = setup
        sample = UniformIndependenceSampler(graph).sample(1500, rng=1)
        obs = observe_induced(graph, partition, sample)
        analytic = induced_size_std(obs, graph.num_nodes)
        boot = bootstrap_estimate(
            obs,
            lambda o: estimate_sizes_induced(o, graph.num_nodes),
            replications=400,
            rng=2,
        )
        # Delta method and bootstrap should agree within ~35%.
        ratio = analytic / boot.std
        assert np.all(ratio > 0.6)
        assert np.all(ratio < 1.6)

    def test_agrees_with_replicate_spread_rw(self, setup):
        """Cross-check against the spread over independent walks."""
        graph, partition = setup
        estimates = []
        for seed in range(40):
            sample = RandomWalkSampler(graph).sample(1500, rng=seed)
            obs = observe_induced(graph, partition, sample)
            estimates.append(estimate_sizes_induced(obs, graph.num_nodes))
        empirical_std = np.std(np.stack(estimates), axis=0, ddof=1)
        sample = RandomWalkSampler(graph).sample(1500, rng=100)
        obs = observe_induced(graph, partition, sample)
        analytic = induced_size_std(obs, graph.num_nodes)
        # i.i.d. approximation on a walk: right order of magnitude.
        ratio = analytic / empirical_std
        assert np.all(ratio > 0.4)
        assert np.all(ratio < 2.5)

    def test_shrinks_with_sample_size(self, setup):
        graph, partition = setup
        small = observe_induced(
            graph, partition, UniformIndependenceSampler(graph).sample(300, rng=3)
        )
        large = observe_induced(
            graph, partition, UniformIndependenceSampler(graph).sample(10_000, rng=3)
        )
        assert np.all(
            induced_size_std(large, graph.num_nodes)
            < induced_size_std(small, graph.num_nodes)
        )

    def test_bad_population_rejected(self, setup):
        graph, partition = setup
        obs = observe_induced(
            graph, partition, UniformIndependenceSampler(graph).sample(10, rng=0)
        )
        with pytest.raises(EstimationError):
            induced_size_std(obs, -1)
