"""Tests for the graph cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.cache import GraphCache, default_cache
from repro.generators import gnm
from repro.graph import CategoryPartition


def _builder_factory(counter):
    def build():
        counter["calls"] += 1
        graph = gnm(50, 100, rng=0)
        partition = CategoryPartition(np.arange(50) % 3)
        return graph, partition

    return build


class TestGraphCache:
    def test_build_then_hit(self, tmp_path):
        cache = GraphCache(tmp_path)
        counter = {"calls": 0}
        build = _builder_factory(counter)
        g1, p1 = cache.get_or_build("test", {"n": 50}, build)
        g2, p2 = cache.get_or_build("test", {"n": 50}, build)
        assert counter["calls"] == 1  # second call served from disk
        assert g1 == g2
        assert p1 == p2

    def test_different_params_different_entries(self, tmp_path):
        cache = GraphCache(tmp_path)
        counter = {"calls": 0}
        build = _builder_factory(counter)
        cache.get_or_build("test", {"n": 50}, build)
        cache.get_or_build("test", {"n": 51}, build)
        assert counter["calls"] == 2

    def test_different_kind_different_entries(self, tmp_path):
        cache = GraphCache(tmp_path)
        counter = {"calls": 0}
        build = _builder_factory(counter)
        cache.get_or_build("a", {"n": 1}, build)
        cache.get_or_build("b", {"n": 1}, build)
        assert counter["calls"] == 2

    def test_disabled_cache_always_builds(self):
        cache = GraphCache(None)
        assert not cache.enabled
        counter = {"calls": 0}
        build = _builder_factory(counter)
        cache.get_or_build("test", {}, build)
        cache.get_or_build("test", {}, build)
        assert counter["calls"] == 2

    def test_partition_roundtrip_none(self, tmp_path):
        cache = GraphCache(tmp_path)
        graph = gnm(20, 40, rng=1)
        out_graph, out_partition = cache.get_or_build(
            "no-partition", {}, lambda: (graph, None)
        )
        again, partition_again = cache.get_or_build(
            "no-partition", {}, lambda: (graph, None)
        )
        assert again == graph
        assert partition_again is None

    def test_clear(self, tmp_path):
        cache = GraphCache(tmp_path)
        counter = {"calls": 0}
        build = _builder_factory(counter)
        cache.get_or_build("test", {}, build)
        assert cache.clear() == 1
        cache.get_or_build("test", {}, build)
        assert counter["calls"] == 2

    def test_metadata_written(self, tmp_path):
        cache = GraphCache(tmp_path)
        counter = {"calls": 0}
        cache.get_or_build("meta", {"x": 7}, _builder_factory(counter))
        metas = list(tmp_path.glob("*.json"))
        assert len(metas) == 1
        assert '"x": 7' in metas[0].read_text()

    def test_default_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache().enabled
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert not default_cache().enabled
