"""Tests for the Table 1 dataset stand-ins and worst-case categories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    TABLE1_DATASETS,
    dataset_names,
    load_dataset,
    worst_case_categories,
)
from repro.exceptions import GenerationError
from repro.graph import is_connected


class TestRegistry:
    def test_four_paper_datasets(self):
        assert set(dataset_names()) == {
            "facebook_texas",
            "facebook_new_orleans",
            "p2p",
            "epinions",
        }

    def test_paper_statistics_recorded(self):
        spec = TABLE1_DATASETS["facebook_texas"]
        assert spec.num_nodes == 36_364
        assert spec.num_edges == 1_590_651
        assert spec.mean_degree == pytest.approx(87.5)

    def test_mean_degree_consistency(self):
        # Published k_V must match 2|E|/|V| within rounding.
        for spec in TABLE1_DATASETS.values():
            implied = 2 * spec.num_edges / spec.num_nodes
            assert abs(implied - spec.mean_degree) < 0.1


class TestLoadDataset:
    @pytest.mark.parametrize("name", dataset_names())
    def test_scaled_statistics_match(self, name):
        graph, spec = load_dataset(name, scale=30, rng=0)
        assert graph.num_nodes > 0
        # Mean degree within 25% of the published value (erased
        # configuration model + giant component trimming lose a little).
        assert abs(graph.mean_degree() - spec.mean_degree) / spec.mean_degree < 0.25

    def test_connected_by_default(self):
        graph, _ = load_dataset("p2p", scale=30, rng=1)
        assert is_connected(graph)

    def test_degree_skew_present(self):
        graph, _ = load_dataset("epinions", scale=20, rng=2)
        degrees = graph.degrees()
        assert degrees.max() > 8 * np.median(degrees)

    def test_texas_denser_than_new_orleans(self):
        texas, _ = load_dataset("facebook_texas", scale=30, rng=3)
        nola, _ = load_dataset("facebook_new_orleans", scale=30, rng=3)
        assert texas.mean_degree() > 2 * nola.mean_degree()

    def test_unknown_name_rejected(self):
        with pytest.raises(GenerationError, match="unknown dataset"):
            load_dataset("orkut")

    def test_bad_scale_rejected(self):
        with pytest.raises(GenerationError):
            load_dataset("p2p", scale=0)

    def test_reproducible(self):
        a, _ = load_dataset("p2p", scale=40, rng=7)
        b, _ = load_dataset("p2p", scale=40, rng=7)
        assert a == b


class TestWorstCaseCategories:
    @pytest.fixture(scope="class")
    def graph(self):
        graph, _ = load_dataset("p2p", scale=40, rng=0)
        return graph

    def test_top_plus_rest(self, graph):
        partition = worst_case_categories(graph, top=10, rng=0)
        assert partition.num_categories <= 11
        assert partition.num_nodes == graph.num_nodes

    def test_rest_category_named(self, graph):
        partition = worst_case_categories(graph, top=5, rng=0)
        if partition.num_categories == 6:
            assert partition.names[-1] == "rest"

    def test_label_propagation_variant(self, graph):
        partition = worst_case_categories(
            graph, top=10, method="label-propagation", rng=0
        )
        assert partition.num_nodes == graph.num_nodes

    def test_unknown_method_rejected(self, graph):
        with pytest.raises(GenerationError):
            worst_case_categories(graph, method="banana")

    def test_categories_align_with_structure(self, graph):
        """The top categories must be denser inside than across."""
        from repro.graph import cut_matrix

        partition = worst_case_categories(graph, top=10, rng=0)
        cuts = cut_matrix(graph, partition)
        intra = np.trace(cuts)
        inter = np.triu(cuts, k=1).sum()
        assert intra > inter  # communities, not random labels
