"""Tests for the ablation experiment driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_ablations, run_experiment
from tests.experiments.test_experiments import TINY


class TestAblations:
    @pytest.fixture(scope="class")
    def results(self):
        return run_ablations(preset=TINY, rng=0)

    def test_all_five_produced(self, results):
        assert set(results) == {
            "ablation_hh",
            "ablation_footnote4",
            "ablation_plugin",
            "ablation_thinning",
            "ablation_bfs",
        }

    def test_hh_inflation_recorded(self, results):
        assert results["ablation_hh"].notes["dense_block_inflation"] > 1.4

    def test_footnote4_global_covers_more(self, results):
        notes = results["ablation_footnote4"].notes
        assert notes["finite_global"] >= notes["finite_per_category"]

    def test_plugin_table_rows(self, results):
        headers, rows = results["ablation_plugin"].table
        plugins = {row[0] for row in rows}
        assert plugins == {"true", "star", "induced"}

    def test_thinning_acf_decreases(self, results):
        headers, rows = results["ablation_thinning"].table
        acfs = [abs(row[2]) for row in rows]
        assert acfs[-1] < acfs[0] + 0.05  # thinning never makes it much worse

    def test_bfs_bias_factor(self, results):
        headers, rows = results["ablation_bfs"].table
        assert rows[0][2] > 1.2

    def test_subset_selection(self):
        only = run_ablations(which=("bfs",), preset=TINY, rng=0)
        assert set(only) == {"ablation_bfs"}

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            run_ablations(which=("nonexistent",), preset=TINY)

    def test_registry_dispatch(self):
        results = run_experiment("ablations", preset=TINY, rng=0)
        assert "ablation_hh" in results

    def test_renders(self, results):
        for result in results.values():
            assert result.experiment_id in result.render()
