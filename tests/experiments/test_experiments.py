"""Integration tests for the experiment drivers (tiny scale).

These run every driver end-to-end with a miniature preset so CI stays
fast; the benches exercise the real presets and assert shape claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    SCALE_PRESETS,
    ScalePreset,
    active_preset,
    experiment_ids,
    run_experiment,
    run_fig3,
    run_table1,
    run_table2,
)
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import run_fig7

TINY = ScalePreset(
    name="tiny",
    planted_scale=120,
    dataset_scale=60,
    facebook_scale=15,
    fig3_sample_sizes=(100, 400, 1500),
    fig4_sample_sizes=(200, 800),
    fig6_sample_sizes=(200, 700),
    replications=3,
    cdf_sample_size=400,
    community_top=6,
    walks_2009=3,
    walks_2010=3,
    samples_per_walk=800,
    top_categories=15,
)


class TestConfig:
    def test_presets_exist(self):
        assert {"small", "medium", "paper", "web"} <= set(SCALE_PRESETS)

    def test_web_preset_is_paper_scale_on_disk(self):
        web, paper = SCALE_PRESETS["web"], SCALE_PRESETS["paper"]
        assert web.graph_storage == "memmap"
        assert paper.graph_storage == "ram"
        assert web.fig3_sample_sizes == paper.fig3_sample_sizes
        assert web.replications == paper.replications

    def test_run_experiment_installs_preset_storage_scope(self, tmp_path, monkeypatch):
        from repro.graph import storage

        monkeypatch.setenv("REPRO_STORAGE_DIR", str(tmp_path))
        seen = {}
        original = storage.graph_storage

        def spying(mode, directory=None):
            seen["mode"] = mode
            return original(mode, directory)

        # run_experiment imports the scope lazily from the storage module,
        # so patching it at the source is what the driver sees.
        monkeypatch.setattr(storage, "graph_storage", spying)
        disk_tiny = ScalePreset(
            **{**TINY.__dict__, "name": "disk-tiny", "graph_storage": "memmap"}
        )
        run_experiment("table1", preset=disk_tiny, rng=0)
        assert seen.get("mode") == "memmap"

    def test_active_preset_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert active_preset().name == "medium"

    def test_active_preset_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_preset().name == "small"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ExperimentError):
            active_preset("huge")

    def test_registry_contents(self):
        ids = experiment_ids()
        for required in ("fig3a", "fig3h", "fig4", "fig5", "fig6", "fig7",
                         "table1", "table2"):
            assert required in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


class TestFig3:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig3(preset=TINY, rng=0)

    def test_all_panels_produced(self, results):
        assert set(results) == {f"fig3{p}" for p in "abcdefgh"}

    def test_series_finite_and_positive(self, results):
        for panel in ("fig3a", "fig3b", "fig3c"):
            for label, (xs, ys) in results[panel].series.items():
                ys = np.asarray(ys, dtype=float)
                assert np.any(np.isfinite(ys)), (panel, label)

    def test_convergence_on_largest_category(self, results):
        for label, (xs, ys) in results["fig3a"].series.items():
            ys = np.asarray(ys, dtype=float)
            finite = ys[np.isfinite(ys)]
            if len(finite) >= 2:
                assert finite[-1] <= finite[0] * 1.5  # no divergence

    def test_cdf_panels_monotone(self, results):
        for panel in ("fig3d", "fig3h"):
            for label, (xs, ys) in results[panel].series.items():
                assert np.all(np.diff(ys) >= 0)
                assert 0 < ys[-1] <= 1.0

    def test_renders(self, results):
        text = results["fig3a"].render()
        assert "fig3a" in text

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError):
            run_fig3(panels=("z",), preset=TINY)


class TestFacebookExperiments:
    def test_table1(self):
        result = run_table1(preset=TINY, rng=0)
        headers, rows = result.table
        assert len(rows) == 4
        # Realised mean degree within 30% of published for each dataset.
        for row in rows:
            assert abs(row[6] - row[3]) / row[3] < 0.30

    def test_table2(self):
        result = run_table2(preset=TINY, rng=0)
        headers, rows = result.table
        assert len(rows) == 5
        fractions = {row[0]: float(row[4].rstrip("%")) for row in rows}
        assert fractions["S-WRW10"] > 5 * max(fractions["RW10"], 1.0)

    def test_fig5(self):
        results = run_fig5(preset=TINY, rng=0)
        assert set(results) == {"fig5a", "fig5b"}
        for result in results.values():
            for label, (ranks, counts) in result.series.items():
                assert np.all(np.diff(counts) <= 0)  # sorted descending

    def test_fig7(self):
        results = run_fig7(preset=TINY, rng=0)
        assert set(results) == {"fig7a", "fig7b", "fig7c"}
        for result in results.values():
            headers, rows = result.table
            assert len(headers) == 3
        # Geography: the estimated country graph must show the negative
        # distance-weight correlation.
        assert results["fig7a"].notes["distance_weight_rank_corr"] < 0

    def test_save(self, tmp_path):
        result = run_table1(preset=TINY, rng=0)
        paths = result.save(tmp_path)
        assert any(p.suffix == ".txt" for p in paths)


class TestRegistryDispatch:
    def test_fig3_panel_dispatch(self):
        results = run_experiment("fig3d", preset=TINY, rng=0)
        assert "fig3d" in results

    def test_table_dispatch(self):
        results = run_experiment("table1", preset=TINY, rng=0)
        assert "table1" in results
