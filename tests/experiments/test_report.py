"""Tests for the full-report generator and the report CLI command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.report import generate_report
from tests.experiments.test_experiments import TINY


class TestGenerateReport:
    def test_writes_report_and_data(self, tmp_path):
        path = generate_report(
            tmp_path, preset=TINY, rng=0, experiments=("table1", "table2")
        )
        assert path.name == "REPORT.md"
        text = path.read_text()
        assert "## table1" in text
        assert "## table2" in text
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table2.txt").exists()

    def test_figures_save_series(self, tmp_path):
        generate_report(tmp_path, preset=TINY, rng=0, experiments=("fig5",))
        assert (tmp_path / "fig5a.csv").exists()
        assert (tmp_path / "fig5b.json").exists()

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            generate_report(
                tmp_path, preset=TINY, experiments=("nonexistent",)
            )


class TestReportCli:
    def test_parser_accepts_report(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["report", "--out", str(tmp_path), "--seed", "2"]
        )
        assert args.command == "report"
        assert args.seed == 2
