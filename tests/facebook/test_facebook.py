"""Tests for the synthetic Facebook world, crawls, and geosocial graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError, SamplingError
from repro.facebook import (
    FacebookModelConfig,
    build_facebook_world,
    category_sample_fraction,
    country_partition,
    distance_weight_correlation,
    estimate_college_graph,
    estimate_country_graph,
    estimate_north_america_graph,
    north_america_partition,
    simulate_crawl_datasets,
)
from repro.graph import is_connected, true_category_graph


@pytest.fixture(scope="module")
def world():
    return build_facebook_world(FacebookModelConfig(scale=12), rng=0)


@pytest.fixture(scope="module")
def crawls(world):
    return simulate_crawl_datasets(
        world,
        samples_per_walk=1200,
        num_walks_2009=4,
        num_walks_2010=4,
        rng=1,
    )


class TestWorld:
    def test_connected(self, world):
        assert is_connected(world.graph)

    def test_declared_fraction_close_to_table2(self, world):
        sizes = world.regions_2009.sizes()
        declared = 1 - sizes[world.undeclared_index] / world.graph.num_nodes
        assert abs(declared - 0.34) < 0.03

    def test_college_fraction_close_to_table2(self, world):
        sizes = world.colleges_2010.sizes()
        members = 1 - sizes[world.none_college_index] / world.graph.num_nodes
        assert abs(members - 0.035) < 0.01

    def test_college_sizes_heavy_tailed(self, world):
        sizes = np.sort(world.colleges_2010.sizes()[:-1])[::-1]
        sizes = sizes[sizes > 0]
        assert sizes[0] > 4 * np.median(sizes)

    def test_geography_in_category_graph(self, world):
        """Same-country region pairs must beat cross-continent pairs."""
        merged = country_partition(world)
        truth = true_category_graph(world.graph, merged)
        us, ca = merged.index_of("US"), merged.index_of("CA")
        jp = merged.index_of("JP")
        assert truth.weight(us, ca) > truth.weight(us, jp)

    def test_colleges_are_communities(self, world):
        """Intra-college density far above the global average."""
        from repro.graph import cut_matrix

        cuts = cut_matrix(world.graph, world.colleges_2010)
        sizes = world.colleges_2010.sizes()
        biggest = int(np.argmax(sizes[:-1]))
        size = sizes[biggest]
        intra_density = cuts[biggest, biggest] / (size * (size - 1) / 2)
        global_density = world.graph.num_edges / (
            world.graph.num_nodes * (world.graph.num_nodes - 1) / 2
        )
        assert intra_density > 20 * global_density

    def test_scaling(self):
        small = build_facebook_world(FacebookModelConfig(scale=30), rng=0)
        assert small.graph.num_nodes >= 1000
        assert small.regions_2009.num_nodes == small.graph.num_nodes

    def test_reproducible(self):
        a = build_facebook_world(FacebookModelConfig(scale=30), rng=5)
        b = build_facebook_world(FacebookModelConfig(scale=30), rng=5)
        assert a.graph == b.graph
        assert np.array_equal(a.regions_2009.labels, b.regions_2009.labels)


class TestCrawls:
    def test_all_five_datasets(self, crawls):
        assert set(crawls) == {"MHRW09", "RW09", "UIS09", "RW10", "S-WRW10"}

    def test_walk_counts(self, crawls):
        assert crawls["RW09"].num_walks == 4
        assert crawls["S-WRW10"].num_walks == 4

    def test_uis_shorter_as_in_table2(self, crawls):
        assert crawls["UIS09"].samples_per_walk < crawls["RW09"].samples_per_walk

    def test_swrw_oversamples_colleges(self, world, crawls):
        rw_frac = category_sample_fraction(world, crawls["RW10"])
        swrw_frac = category_sample_fraction(world, crawls["S-WRW10"])
        assert swrw_frac > 5 * rw_frac
        assert swrw_frac > 0.5

    def test_2009_fraction_near_declared_share(self, world, crawls):
        frac = category_sample_fraction(world, crawls["UIS09"])
        assert abs(frac - 0.34) < 0.06

    def test_combined_concatenates(self, crawls):
        dataset = crawls["RW09"]
        combined = dataset.combined()
        assert combined.size == dataset.num_walks * dataset.samples_per_walk

    def test_subset_generation(self, world):
        only = simulate_crawl_datasets(
            world, samples_per_walk=100, num_walks_2009=2, rng=0,
            include=("RW09",),
        )
        assert set(only) == {"RW09"}

    def test_bad_length_rejected(self, world):
        with pytest.raises(SamplingError):
            simulate_crawl_datasets(world, samples_per_walk=5)


class TestGeosocial:
    def test_country_partition_covers_all(self, world):
        merged = country_partition(world)
        assert merged.num_nodes == world.graph.num_nodes
        assert "Undeclared" in merged.names

    def test_north_america_partition(self, world):
        merged = north_america_partition(world)
        assert "elsewhere" in merged.names
        na = [n for n in merged.names if n.startswith(("US.", "CA."))]
        assert len(na) == merged.num_categories - 1

    def test_country_graph_estimation(self, world, crawls):
        estimate = estimate_country_graph(world, crawls, max_walks=2)
        truth = true_category_graph(world.graph, country_partition(world))
        us, ca = truth.names.index("US"), truth.names.index("CA")
        est = estimate.weights[us, ca]
        assert np.isfinite(est)
        assert 0.2 < est / truth.weights[us, ca] < 5.0

    def test_north_america_graph_estimation(self, world, crawls):
        estimate = estimate_north_america_graph(world, crawls, max_walks=2)
        assert estimate.num_categories >= 3
        assert estimate.num_edges() > 0

    def test_college_graph_estimation(self, world, crawls):
        estimate = estimate_college_graph(world, crawls, max_walks=2)
        assert estimate.num_categories == world.colleges_2010.num_categories

    def test_college_graph_needs_swrw(self, world, crawls):
        without = {k: v for k, v in crawls.items() if k != "S-WRW10"}
        with pytest.raises(EstimationError):
            estimate_college_graph(world, without)

    def test_country_graph_needs_2009_data(self, world, crawls):
        without = {k: v for k, v in crawls.items() if "09" not in k}
        with pytest.raises(EstimationError):
            estimate_country_graph(world, without)

    def test_distance_correlation_negative_on_truth(self, world):
        merged = country_partition(world)
        truth = true_category_graph(world.graph, merged)
        positions = np.full(truth.num_categories, np.nan)
        first_pos: dict[str, float] = {}
        for r, country in enumerate(world.region_country):
            code = world.country_names[country]
            first_pos.setdefault(code, float(world.region_position[r]))
        for i, name in enumerate(truth.names):
            if name in first_pos:
                positions[i] = first_pos[name]
        corr = distance_weight_correlation(world, truth, positions)
        assert corr < -0.15  # geography suppresses distant ties

    def test_distance_correlation_needs_edges(self, world):
        from repro.graph import CategoryGraph

        tiny = CategoryGraph(
            np.array([1.0, 1.0]),
            np.array([[np.nan, 0.5], [0.5, np.nan]]),
        )
        with pytest.raises(EstimationError):
            distance_weight_correlation(world, tiny, np.array([0.0, 1.0]))
