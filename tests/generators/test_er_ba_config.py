"""Tests for ER, BA and configuration-model generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.generators import (
    barabasi_albert_graph,
    configuration_model_graph,
    gnm,
    gnp,
    power_law_degree_sequence,
    random_cross_edges,
)


class TestGnp:
    def test_edge_count_close_to_expectation(self):
        n, p = 300, 0.05
        g = gnp(n, p, rng=0)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 4 * np.sqrt(expected)

    def test_p_zero(self):
        assert gnp(50, 0.0, rng=0).num_edges == 0

    def test_p_one_complete(self):
        g = gnp(10, 1.0, rng=0)
        assert g.num_edges == 45

    def test_invalid_p(self):
        with pytest.raises(GenerationError):
            gnp(10, 1.5)

    def test_negative_n(self):
        with pytest.raises(GenerationError):
            gnp(-1, 0.5)

    def test_tiny_n(self):
        assert gnp(1, 0.9, rng=0).num_edges == 0


class TestGnm:
    @pytest.mark.parametrize("m", [0, 1, 100, 500])
    def test_exact_edge_count(self, m):
        g = gnm(100, m, rng=0)
        assert g.num_edges == m

    def test_dense_regime(self):
        g = gnm(20, 150, rng=0)  # 150 of 190 pairs
        assert g.num_edges == 150

    def test_complete(self):
        assert gnm(10, 45, rng=0).num_edges == 45

    def test_m_too_large(self):
        with pytest.raises(GenerationError):
            gnm(10, 46)

    def test_reproducible(self):
        assert gnm(50, 100, rng=5) == gnm(50, 100, rng=5)


class TestRandomCrossEdges:
    def test_endpoints_in_groups(self):
        a = np.arange(0, 10)
        b = np.arange(10, 20)
        edges = random_cross_edges(a, b, 15, rng=0)
        assert len(edges) == 15
        for u, v in edges:
            assert (u in a and v in b) or (u in b and v in a)

    def test_distinct(self):
        edges = random_cross_edges(np.arange(5), np.arange(5, 10), 20, rng=0)
        keys = {tuple(e) for e in map(tuple, edges)}
        assert len(keys) == 20

    def test_forbid_respected(self):
        forbid = {(0, 5)}
        edges = random_cross_edges(
            np.array([0]), np.array([5, 6]), 1, rng=0, forbid=forbid
        )
        assert tuple(edges[0]) == (0, 6)

    def test_empty_group_rejected(self):
        with pytest.raises(GenerationError):
            random_cross_edges(np.array([]), np.array([1]), 1)

    def test_impossible_count_rejected(self):
        with pytest.raises(GenerationError):
            random_cross_edges(np.array([0]), np.array([1]), 5, rng=0)


class TestBarabasiAlbert:
    def test_basic_shape(self):
        g = barabasi_albert_graph(200, 3, rng=0)
        assert g.num_nodes == 200
        # star seed has m edges; each of the n-m-1 arrivals adds m edges
        assert g.num_edges == 3 + (200 - 4) * 3

    def test_heavy_tail(self):
        g = barabasi_albert_graph(2000, 2, rng=0)
        degs = g.degrees()
        assert degs.max() > 10 * np.median(degs)

    def test_invalid_m(self):
        with pytest.raises(GenerationError):
            barabasi_albert_graph(10, 0)
        with pytest.raises(GenerationError):
            barabasi_albert_graph(3, 3)


class TestConfigurationModel:
    def test_power_law_sequence_mean(self):
        seq = power_law_degree_sequence(5000, 2.5, mean_degree=10.0, rng=0)
        assert abs(seq.mean() - 10.0) / 10.0 < 0.15
        assert seq.sum() % 2 == 0
        assert seq.min() >= 1

    def test_power_law_skew(self):
        seq = power_law_degree_sequence(5000, 2.2, mean_degree=10.0, rng=0)
        assert seq.max() > 5 * seq.mean()

    def test_power_law_invalid(self):
        with pytest.raises(GenerationError):
            power_law_degree_sequence(10, 0.5, 5.0)
        with pytest.raises(GenerationError):
            power_law_degree_sequence(0, 2.5, 5.0)
        with pytest.raises(GenerationError):
            power_law_degree_sequence(10, 2.5, 0.5)

    def test_graph_from_sequence(self):
        seq = power_law_degree_sequence(2000, 2.5, mean_degree=8.0, rng=1)
        g = configuration_model_graph(seq, rng=1)
        assert g.num_nodes == 2000
        # Erased model loses a few percent of edges to defects.
        assert g.num_edges > 0.85 * seq.sum() / 2

    def test_odd_sum_rejected(self):
        with pytest.raises(GenerationError, match="even"):
            configuration_model_graph(np.array([1, 1, 1]))

    def test_degree_too_large_rejected(self):
        with pytest.raises(GenerationError):
            configuration_model_graph(np.array([4, 2, 1, 1]))

    def test_empty(self):
        assert configuration_model_graph(np.array([], dtype=np.int64)).num_nodes == 0
