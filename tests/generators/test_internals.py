"""Tests for generator internals (pair unranking, scaling helpers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.er import _unrank_pairs
from repro.generators.planted import PlantedModelConfig, _unique_names


class TestUnrankPairs:
    @pytest.mark.parametrize("n", [2, 3, 7, 20])
    def test_exhaustive_small(self, n):
        expected = [(i, j) for i in range(n) for j in range(i + 1, n)]
        flat = np.arange(len(expected), dtype=np.int64)
        rows, cols = _unrank_pairs(flat, n)
        assert list(zip(rows.tolist(), cols.tolist())) == expected

    @given(
        st.integers(min_value=2, max_value=5000),
        st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=200)
    def test_roundtrip_property(self, n, raw_rank):
        total = n * (n - 1) // 2
        rank = raw_rank % total
        rows, cols = _unrank_pairs(np.array([rank], dtype=np.int64), n)
        i, j = int(rows[0]), int(cols[0])
        assert 0 <= i < j < n
        # Re-rank: pairs before row i, plus offset within the row.
        recomputed = i * n - i * (i + 1) // 2 + (j - i - 1)
        assert recomputed == rank

    def test_large_n_no_float_error(self):
        n = 500_000
        total = n * (n - 1) // 2
        ranks = np.array([0, total // 2, total - 1], dtype=np.int64)
        rows, cols = _unrank_pairs(ranks, n)
        assert np.all(rows < cols)
        assert cols[-1] == n - 1
        assert rows[-1] == n - 2


class TestPlantedHelpers:
    def test_unique_names_no_duplicates(self):
        names = _unique_names((50, 50, 50, 100))
        assert len(set(names)) == 4
        assert names[0] == "50"
        assert names[1] == "50.1"

    def test_effective_sizes_parity(self):
        # Odd k with odd scaled size must be bumped to keep n*k even.
        config = PlantedModelConfig(sizes=(51,), k=5, scale=1)
        sizes = config.effective_sizes()
        assert (sizes[0] * 5) % 2 == 0

    def test_effective_sizes_clamp(self):
        config = PlantedModelConfig(sizes=(50,), k=20, scale=1000)
        assert config.effective_sizes()[0] >= 21

    def test_num_nodes_consistent(self):
        config = PlantedModelConfig(scale=10)
        assert config.num_nodes() == sum(config.effective_sizes())
