"""Tests for the paper's planted model (Section 6.2.1) and the SBM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.generators import (
    PAPER_CATEGORY_SIZES,
    PlantedModelConfig,
    planted_category_graph,
    planted_partition_graph,
    stochastic_block_model,
)
from repro.graph import cut_matrix, is_connected


class TestPaperConstants:
    def test_sizes_sum_to_paper_n(self):
        assert sum(PAPER_CATEGORY_SIZES) == 88_850

    def test_size_range(self):
        assert min(PAPER_CATEGORY_SIZES) == 50
        assert max(PAPER_CATEGORY_SIZES) == 50_000


class TestPlantedModel:
    def test_edge_budget(self):
        # |E| = 0.6 * N * k exactly (0.5 intra + 0.1 inter), when connected
        # without needing bridges.
        g, p = planted_category_graph(k=10, alpha=0.0, scale=20, rng=0)
        n = g.num_nodes
        assert g.num_edges == int(0.5 * n * 10) + int(round(n * 10 * 0.1))

    def test_partition_matches_scaled_sizes(self):
        config = PlantedModelConfig(k=10, scale=20)
        g, p = planted_category_graph(config, rng=0)
        assert p.num_categories == 10
        assert np.array_equal(np.sort(p.sizes()), np.sort(config.effective_sizes()))

    def test_connected(self):
        g, _ = planted_category_graph(k=6, scale=50, rng=1)
        assert is_connected(g)

    def test_alpha_zero_keeps_block_labels(self):
        g, p = planted_category_graph(k=6, alpha=0.0, scale=50, rng=0)
        sizes = p.sizes()
        # With alpha=0 labels are contiguous blocks.
        expected = np.repeat(np.arange(10), sizes)
        assert np.array_equal(p.labels, expected)

    def test_alpha_one_decouples(self):
        g, p0 = planted_category_graph(k=6, alpha=0.0, scale=50, rng=0)
        _, p1 = planted_category_graph(k=6, alpha=1.0, scale=50, rng=0)
        assert not np.array_equal(p0.labels, p1.labels)
        assert np.array_equal(np.sort(p0.sizes()), np.sort(p1.sizes()))

    def test_community_structure_strength(self):
        # At alpha=0 intra-category edges dominate each category's cut row.
        g, p = planted_category_graph(k=10, alpha=0.0, scale=20, rng=2)
        cuts = cut_matrix(g, p)
        intra = np.trace(cuts)
        inter = np.triu(cuts, k=1).sum()
        assert intra > 4 * inter  # 0.5 Nk intra vs 0.1 Nk inter

    def test_inter_edges_connect_different_categories(self):
        config = PlantedModelConfig(k=4, alpha=0.0, scale=100, connect=False)
        g, p = planted_category_graph(config, rng=3)
        cuts = cut_matrix(g, p)
        inter = int(np.triu(cuts, k=1).sum())
        n = g.num_nodes
        assert inter == int(round(n * 4 * 0.1))

    def test_invalid_alpha(self):
        with pytest.raises(GenerationError):
            planted_category_graph(k=4, alpha=1.5, scale=100, rng=0)

    def test_invalid_k(self):
        with pytest.raises(GenerationError):
            planted_category_graph(k=0, scale=100, rng=0)

    def test_invalid_scale(self):
        with pytest.raises(GenerationError):
            PlantedModelConfig(scale=0).effective_sizes()

    def test_scale_clamps_to_k_plus_one(self):
        config = PlantedModelConfig(k=20, scale=10_000)
        sizes = config.effective_sizes()
        assert all(s >= 21 for s in sizes)
        assert all((s * 20) % 2 == 0 for s in sizes)

    def test_reproducible(self):
        a = planted_category_graph(k=6, scale=50, rng=9)
        b = planted_category_graph(k=6, scale=50, rng=9)
        assert a[0] == b[0]
        assert np.array_equal(a[1].labels, b[1].labels)


class TestSbm:
    def test_block_structure(self):
        g, p = stochastic_block_model(
            [100, 100], np.array([[0.2, 0.01], [0.01, 0.2]]), rng=0
        )
        cuts = cut_matrix(g, p)
        assert cuts[0, 0] > cuts[0, 1]
        assert cuts[1, 1] > cuts[0, 1]

    def test_edge_counts_near_expectation(self):
        g, p = stochastic_block_model(
            [200, 200], np.array([[0.1, 0.02], [0.02, 0.1]]), rng=1
        )
        cuts = cut_matrix(g, p)
        intra_expect = 0.1 * 200 * 199 / 2
        inter_expect = 0.02 * 200 * 200
        assert abs(cuts[0, 0] - intra_expect) < 5 * np.sqrt(intra_expect)
        assert abs(cuts[0, 1] - inter_expect) < 5 * np.sqrt(inter_expect)

    def test_names_passed_through(self):
        g, p = stochastic_block_model(
            [10, 10], np.eye(2) * 0.5, rng=0, names=["x", "y"]
        )
        assert p.names == ("x", "y")

    def test_asymmetric_rejected(self):
        with pytest.raises(GenerationError, match="symmetric"):
            stochastic_block_model([5, 5], np.array([[0.5, 0.1], [0.2, 0.5]]))

    def test_bad_probabilities_rejected(self):
        with pytest.raises(GenerationError):
            stochastic_block_model([5, 5], np.array([[1.5, 0.1], [0.1, 0.5]]))

    def test_bad_sizes_rejected(self):
        with pytest.raises(GenerationError):
            stochastic_block_model([0, 5], np.eye(2))

    def test_planted_partition_helper(self):
        g, p = planted_partition_graph(4, 50, p_in=0.3, p_out=0.01, rng=0)
        assert g.num_nodes == 200
        assert p.num_categories == 4
        cuts = cut_matrix(g, p)
        assert np.trace(cuts) > np.triu(cuts, k=1).sum()

    def test_planted_partition_invalid(self):
        with pytest.raises(GenerationError):
            planted_partition_graph(0, 10, 0.5, 0.1)
