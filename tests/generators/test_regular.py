"""Tests for the random k-regular generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.generators import random_regular_graph
from repro.graph import is_connected


class TestRandomRegular:
    @pytest.mark.parametrize("n,k", [(10, 3), (20, 4), (51, 6), (100, 49)])
    def test_all_degrees_equal_k(self, n, k):
        g = random_regular_graph(n, k, rng=0)
        assert set(g.degrees().tolist()) == {k}
        assert g.num_edges == n * k // 2

    def test_zero_degree(self):
        g = random_regular_graph(5, 0, rng=0)
        assert g.num_edges == 0

    def test_complete_graph_case(self):
        g = random_regular_graph(8, 7, rng=0)
        assert g.num_edges == 28

    def test_odd_nk_rejected(self):
        with pytest.raises(GenerationError, match="even"):
            random_regular_graph(5, 3, rng=0)

    def test_k_geq_n_rejected(self):
        with pytest.raises(GenerationError):
            random_regular_graph(5, 5, rng=0)

    def test_negative_k_rejected(self):
        with pytest.raises(GenerationError):
            random_regular_graph(5, -1, rng=0)

    def test_different_seeds_differ(self):
        a = random_regular_graph(30, 4, rng=1)
        b = random_regular_graph(30, 4, rng=2)
        assert a != b

    def test_same_seed_reproducible(self):
        a = random_regular_graph(30, 4, rng=7)
        b = random_regular_graph(30, 4, rng=7)
        assert a == b

    def test_moderate_k_usually_connected(self):
        # Random k-regular graphs with k >= 3 are connected w.h.p.
        g = random_regular_graph(200, 5, rng=3)
        assert is_connected(g)

    def test_simple_no_self_loops(self):
        g = random_regular_graph(40, 6, rng=4)
        for v in range(40):
            nbrs = g.neighbors(v)
            assert v not in nbrs
            assert len(np.unique(nbrs)) == len(nbrs)
