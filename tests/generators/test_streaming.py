"""Chunked ``emit_*_arcs`` faces vs their one-shot generators.

Every generator's streaming face shares its sampling core with the
one-shot face, so for the same seed the two must describe the same
edge set — the graph assembled from the emitted chunks is bit-identical
to the one-shot build, at any chunk size. That property is what lets
the ``web`` scale tier swap construction paths without changing a
single output byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.facebook.model import FacebookModelConfig, build_facebook_world, emit_arcs
from repro.generators import (
    barabasi_albert_graph,
    configuration_model_graph,
    emit_ba_arcs,
    emit_configuration_arcs,
    emit_gnm_arcs,
    emit_gnp_arcs,
    emit_planted_arcs,
    emit_regular_arcs,
    emit_sbm_arcs,
    gnm,
    gnp,
    planted_category_graph,
    power_law_degree_sequence,
    random_regular_graph,
    stochastic_block_model,
)
from repro.graph.builder import GraphBuilder
from repro.graph.storage import graph_storage

CHUNK_SIZES = (7, 128, 1 << 20)

_DEGREES = power_law_degree_sequence(300, 2.5, 6.0, rng=42)
_SBM_PROBS = np.array([[0.25, 0.02], [0.02, 0.3]])

#: name -> (one-shot build, emit face); both closures take (seed).
GENERATORS = {
    "gnp": (
        lambda seed: gnp(150, 0.06, rng=seed),
        lambda seed, cs: emit_gnp_arcs(150, 0.06, chunk_size=cs, rng=seed),
        150,
    ),
    "gnp-dense": (
        lambda seed: gnp(25, 1.0, rng=seed),
        lambda seed, cs: emit_gnp_arcs(25, 1.0, chunk_size=cs, rng=seed),
        25,
    ),
    "gnm": (
        lambda seed: gnm(120, 700, rng=seed),
        lambda seed, cs: emit_gnm_arcs(120, 700, chunk_size=cs, rng=seed),
        120,
    ),
    "ba": (
        lambda seed: barabasi_albert_graph(250, 3, rng=seed),
        lambda seed, cs: emit_ba_arcs(250, 3, chunk_size=cs, rng=seed),
        250,
    ),
    "configuration": (
        lambda seed: configuration_model_graph(_DEGREES, rng=seed),
        lambda seed, cs: emit_configuration_arcs(_DEGREES, chunk_size=cs, rng=seed),
        len(_DEGREES),
    ),
    "regular": (
        lambda seed: random_regular_graph(100, 6, rng=seed),
        lambda seed, cs: emit_regular_arcs(100, 6, chunk_size=cs, rng=seed),
        100,
    ),
    "sbm": (
        lambda seed: stochastic_block_model([80, 90], _SBM_PROBS, rng=seed)[0],
        lambda seed, cs: emit_sbm_arcs([80, 90], _SBM_PROBS, chunk_size=cs, rng=seed),
        170,
    ),
    "planted": (
        lambda seed: planted_category_graph(k=6, scale=120, rng=seed)[0],
        lambda seed, cs: emit_planted_arcs(chunk_size=cs, k=6, scale=120, rng=seed),
        None,  # node count taken from the one-shot graph
    ),
}


def _from_chunks(num_nodes, chunks):
    builder = GraphBuilder(num_nodes)
    for chunk in chunks:
        assert chunk.ndim == 2 and chunk.shape[1] == 2
        builder.add_edges(chunk)
    return builder.build()


def _graphs_equal(a, b):
    return np.array_equal(np.asarray(a.indptr), np.asarray(b.indptr)) and (
        np.array_equal(np.asarray(a.indices), np.asarray(b.indices))
    )


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_chunked_emit_matches_one_shot(name, chunk_size):
    one_shot, emit, num_nodes = GENERATORS[name]
    expected = one_shot(9)
    n = num_nodes if num_nodes is not None else expected.num_nodes
    streamed = _from_chunks(n, emit(9, chunk_size))
    assert _graphs_equal(streamed, expected), name


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_emit_under_memmap_scope(name, tmp_path):
    """The streams feed the out-of-core builder without byte drift."""
    one_shot, emit, num_nodes = GENERATORS[name]
    expected = one_shot(4)
    n = num_nodes if num_nodes is not None else expected.num_nodes
    with graph_storage("memmap", directory=tmp_path):
        streamed = _from_chunks(n, emit(4, 64))
    assert _graphs_equal(streamed, expected), name


def test_facebook_emit_matches_build():
    cfg = FacebookModelConfig(scale=50)
    world = build_facebook_world(cfg, rng=13)
    streamed = _from_chunks(
        world.graph.num_nodes, emit_arcs(cfg, chunk_size=4096, rng=13)
    )
    assert _graphs_equal(streamed, world.graph)


def test_facebook_one_shot_identical_under_memmap(tmp_path):
    cfg = FacebookModelConfig(scale=50)
    world = build_facebook_world(cfg, rng=13)
    with graph_storage("memmap", directory=tmp_path):
        mapped = build_facebook_world(cfg, rng=13)
    assert _graphs_equal(mapped.graph, world.graph)
    assert np.array_equal(mapped.regions_2009.labels, world.regions_2009.labels)
    assert np.array_equal(
        mapped.colleges_2010.labels, world.colleges_2010.labels
    )


@pytest.mark.parametrize(
    "emit",
    [
        lambda: emit_gnp_arcs(10, 0.5, chunk_size=0, rng=0),
        lambda: emit_gnm_arcs(10, 5, chunk_size=0, rng=0),
        lambda: emit_ba_arcs(10, 2, chunk_size=0, rng=0),
        lambda: emit_configuration_arcs(
            np.array([2, 2], dtype=np.int64), chunk_size=0, rng=0
        ),
        lambda: emit_regular_arcs(10, 2, chunk_size=0, rng=0),
        lambda: emit_sbm_arcs([5, 5], np.full((2, 2), 0.2), chunk_size=0, rng=0),
        lambda: emit_planted_arcs(chunk_size=0, k=3, scale=1000, rng=0),
        lambda: emit_arcs(FacebookModelConfig(scale=60), chunk_size=0, rng=0),
    ],
)
def test_emit_rejects_bad_chunk_size(emit):
    with pytest.raises(GenerationError, match="chunk_size"):
        emit()


def test_emit_validates_eagerly():
    """Bad parameters raise at call time, not at first iteration."""
    with pytest.raises(GenerationError):
        emit_gnp_arcs(10, 1.5, rng=0)
    with pytest.raises(GenerationError):
        emit_gnm_arcs(5, 100, rng=0)
    with pytest.raises(GenerationError):
        emit_ba_arcs(3, 5, rng=0)
    with pytest.raises(GenerationError):
        emit_sbm_arcs([5, 5], np.full((3, 3), 0.2), rng=0)
