"""Unit tests for the CSR graph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_zero_node_graph(self):
        g = Graph.empty(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.mean_degree() == 0.0

    def test_duplicate_edges_merged(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph.from_edges(3, [(0, 0)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 3)])
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(-1, 0)])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphError):
            Graph(np.array([1, 2]), np.array([0, 1]))

    def test_asymmetric_csr_rejected(self):
        # arc 0->1 without 1->0
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(GraphError):
            Graph(indptr, indices)

    def test_odd_arc_count_rejected(self):
        with pytest.raises(GraphError, match="even"):
            Graph(np.array([0, 1, 1, 1]), np.array([1]))


class TestAccessors:
    def test_degrees(self, triangle_pair):
        assert list(triangle_pair.degrees()) == [3, 2, 2, 3, 2, 2]

    def test_degree_single(self, triangle_pair):
        assert triangle_pair.degree(0) == 3
        assert triangle_pair.degree(5) == 2

    def test_degree_out_of_range(self, triangle_pair):
        with pytest.raises(GraphError):
            triangle_pair.degree(6)
        with pytest.raises(GraphError):
            triangle_pair.degree(-1)

    def test_neighbors_sorted(self, triangle_pair):
        assert list(triangle_pair.neighbors(0)) == [1, 2, 3]

    def test_neighbors_readonly(self, triangle_pair):
        nbrs = triangle_pair.neighbors(0)
        with pytest.raises(ValueError):
            nbrs[0] = 99

    def test_has_edge(self, triangle_pair):
        assert triangle_pair.has_edge(0, 1)
        assert triangle_pair.has_edge(1, 0)
        assert triangle_pair.has_edge(0, 3)
        assert not triangle_pair.has_edge(0, 4)
        assert not triangle_pair.has_edge(0, 0)

    def test_volume_total_is_twice_edges(self, triangle_pair):
        assert triangle_pair.volume() == 2 * triangle_pair.num_edges

    def test_volume_subset(self, triangle_pair):
        assert triangle_pair.volume(np.array([0, 1])) == 5

    def test_volume_bad_nodes(self, triangle_pair):
        with pytest.raises(GraphError):
            triangle_pair.volume(np.array([99]))

    def test_mean_degree(self, triangle_pair):
        assert triangle_pair.mean_degree() == pytest.approx(14 / 6)


class TestIteration:
    def test_edges_iterator_matches_edge_array(self, triangle_pair):
        from_iter = sorted(triangle_pair.edges())
        from_array = sorted(map(tuple, triangle_pair.edge_array()))
        assert from_iter == from_array

    def test_edge_array_canonical_order(self, triangle_pair):
        arr = triangle_pair.edge_array()
        assert np.all(arr[:, 0] < arr[:, 1])
        assert len(arr) == triangle_pair.num_edges

    def test_edges_of_empty_graph(self):
        assert list(Graph.empty(3).edges()) == []
        assert Graph.empty(3).edge_array().shape == (0, 2)


class TestDunder:
    def test_len(self, triangle_pair):
        assert len(triangle_pair) == 6

    def test_eq_and_hash(self):
        a = Graph.from_edges(3, [(0, 1), (1, 2)])
        b = Graph.from_edges(3, [(1, 2), (0, 1)])
        c = Graph.from_edges(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"

    def test_repr(self, triangle_pair):
        assert "num_nodes=6" in repr(triangle_pair)
        assert "num_edges=7" in repr(triangle_pair)
