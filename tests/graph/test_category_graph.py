"""Unit tests for the category graph (ground truth, Eq. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.graph import (
    CategoryGraph,
    CategoryPartition,
    cut_matrix,
    true_category_graph,
)


class TestTrueCategoryGraph:
    def test_figure1_weights(self, paper_figure1):
        graph, partition = paper_figure1
        cg = true_category_graph(graph, partition)
        assert cg.weight("white", "black") == pytest.approx(3 / 9)
        assert cg.weight("white", "gray") == pytest.approx(2 / 6)
        assert cg.weight("gray", "black") == pytest.approx(1 / 6)

    def test_sizes(self, paper_figure1):
        graph, partition = paper_figure1
        cg = true_category_graph(graph, partition)
        assert cg.size("white") == 3
        assert cg.size("gray") == 2
        assert cg.size("black") == 3

    def test_cuts_recorded(self, paper_figure1):
        graph, partition = paper_figure1
        cg = true_category_graph(graph, partition)
        w_idx = partition.index_of("white")
        b_idx = partition.index_of("black")
        assert cg.cuts[w_idx, b_idx] == 3

    def test_diagonal_is_nan(self, paper_figure1):
        graph, partition = paper_figure1
        cg = true_category_graph(graph, partition)
        assert np.all(np.isnan(np.diag(cg.weights)))

    def test_self_weight_query_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        cg = true_category_graph(graph, partition)
        with pytest.raises(PartitionError, match="self-loops"):
            cg.weight("white", "white")

    def test_no_cross_edges_means_weight_zero(self):
        from repro.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        p = CategoryPartition(np.array([0, 0, 1, 1]))
        cg = true_category_graph(g, p)
        assert cg.weight(0, 1) == 0.0
        assert not cg.has_edge(0, 1)
        assert cg.num_edges() == 0

    def test_mismatched_partition_rejected(self, triangle_pair):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            true_category_graph(triangle_pair, p)

    def test_empty_category_weight_is_nan(self, triangle_pair):
        p = CategoryPartition(
            np.array([0, 0, 0, 1, 1, 1]), num_categories=3
        )
        cg = true_category_graph(triangle_pair, p)
        assert np.isnan(cg.weight(0, 2))


class TestCutMatrix:
    def test_triangle_pair(self, triangle_pair, triangle_pair_partition):
        cuts = cut_matrix(triangle_pair, triangle_pair_partition)
        assert cuts[0, 1] == 1  # the single bridge
        assert cuts[1, 0] == 1
        assert cuts[0, 0] == 3  # intra-left triangle
        assert cuts[1, 1] == 3

    def test_empty_graph(self):
        from repro.graph import Graph

        cuts = cut_matrix(Graph.empty(3), CategoryPartition(np.array([0, 1, 1])))
        assert np.array_equal(cuts, np.zeros((2, 2), dtype=np.int64))


class TestCategoryGraphContainer:
    def _simple(self) -> CategoryGraph:
        w = np.array([[np.nan, 0.5, 0.0], [0.5, np.nan, 0.25], [0.0, 0.25, np.nan]])
        return CategoryGraph(np.array([2.0, 3.0, 4.0]), w, names=("a", "b", "c"))

    def test_edges_iteration_skips_zero(self):
        cg = self._simple()
        edges = list(cg.edges())
        assert (0, 1, 0.5) in edges
        assert (1, 2, 0.25) in edges
        assert len(edges) == 2
        assert cg.num_edges() == 2

    def test_top_edges(self):
        cg = self._simple()
        top = cg.top_edges(1)
        assert top == [("a", "b", 0.5)]

    def test_top_edges_k_larger_than_edges(self):
        cg = self._simple()
        assert len(cg.top_edges(10)) == 2

    def test_resolve_by_name_and_index(self):
        cg = self._simple()
        assert cg.weight("a", "b") == cg.weight(0, 1)
        assert cg.size("c") == 4.0

    def test_unknown_name_rejected(self):
        cg = self._simple()
        with pytest.raises(PartitionError):
            cg.weight("a", "zzz")

    def test_bad_index_rejected(self):
        cg = self._simple()
        with pytest.raises(PartitionError):
            cg.size(99)

    def test_asymmetric_weights_rejected(self):
        w = np.array([[np.nan, 0.5], [0.4, np.nan]])
        with pytest.raises(PartitionError, match="symmetric"):
            CategoryGraph(np.array([1.0, 1.0]), w)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            CategoryGraph(np.array([1.0, 1.0]), np.zeros((3, 3)))

    def test_repr(self):
        assert "num_categories=3" in repr(self._simple())
