"""Unit tests for graph I/O and NetworkX conversion."""

from __future__ import annotations

import json

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    CategoryPartition,
    Graph,
    category_graph_to_json,
    from_networkx,
    load_npz,
    read_edge_list,
    read_labels,
    save_npz,
    to_networkx,
    true_category_graph,
    write_edge_list,
    write_labels,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path, triangle_pair):
        path = tmp_path / "g.txt"
        write_edge_list(triangle_pair, path, header="test graph")
        loaded = read_edge_list(path)
        assert loaded == triangle_pair

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        g = read_edge_list(path)
        assert g.num_edges == 1

    def test_explicit_num_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_nodes=5)
        assert g.num_nodes == 5

    def test_num_nodes_too_small(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        with pytest.raises(GraphError):
            read_edge_list(path, num_nodes=5)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError, match="expected"):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("")
        g = read_edge_list(path)
        assert g.num_nodes == 0


class TestLabels:
    def test_roundtrip(self, tmp_path, triangle_pair_partition):
        path = tmp_path / "labels.txt"
        write_labels(triangle_pair_partition, path)
        loaded = read_labels(path, 6)
        assert np.array_equal(
            loaded.sizes(), triangle_pair_partition.sizes()
        )
        assert set(loaded.names) == set(triangle_pair_partition.names)

    def test_names_with_spaces(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("0 New York\n1 Los Angeles\n")
        p = read_labels(path, 2)
        assert "New York" in p.names

    def test_malformed(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("justonething\n")
        with pytest.raises(GraphError):
            read_labels(path, 1)


class TestNpz:
    def test_roundtrip_with_partition(
        self, tmp_path, triangle_pair, triangle_pair_partition
    ):
        path = tmp_path / "bundle.npz"
        save_npz(path, triangle_pair, triangle_pair_partition)
        graph, partition = load_npz(path)
        assert graph == triangle_pair
        assert partition == triangle_pair_partition

    def test_roundtrip_graph_only(self, tmp_path, triangle_pair):
        path = tmp_path / "bundle.npz"
        save_npz(path, triangle_pair)
        graph, partition = load_npz(path)
        assert graph == triangle_pair
        assert partition is None

    def test_bundle_is_pickle_free(
        self, tmp_path, triangle_pair, triangle_pair_partition
    ):
        """New bundles must load with pickle execution disabled."""
        import numpy as np

        path = tmp_path / "bundle.npz"
        save_npz(path, triangle_pair, triangle_pair_partition)
        with np.load(path, allow_pickle=False) as data:
            assert data["names"].dtype.kind == "U"  # fixed-width, not object

    def test_legacy_object_names_bundle_still_loads(
        self, tmp_path, triangle_pair, triangle_pair_partition
    ):
        """Pre-fix bundles stored names as a pickled object array."""
        import numpy as np

        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            indptr=np.asarray(triangle_pair.indptr),
            indices=np.asarray(triangle_pair.indices),
            labels=np.asarray(triangle_pair_partition.labels),
            names=np.asarray(triangle_pair_partition.names, dtype=object),
            allow_pickle=True,
        )
        graph, partition = load_npz(path)
        assert graph == triangle_pair
        assert partition == triangle_pair_partition


class TestNetworkx:
    def test_to_networkx(self, triangle_pair, triangle_pair_partition):
        nxg = to_networkx(triangle_pair, triangle_pair_partition)
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 7
        assert nxg.nodes[0]["category"] == "left"

    def test_roundtrip(self, triangle_pair, triangle_pair_partition):
        nxg = to_networkx(triangle_pair, triangle_pair_partition)
        graph, partition = from_networkx(nxg)
        assert graph == triangle_pair
        assert partition is not None
        assert np.array_equal(partition.labels, triangle_pair_partition.labels)

    def test_from_networkx_without_categories(self):
        nxg = nx.path_graph(4)
        graph, partition = from_networkx(nxg)
        assert graph.num_edges == 3
        assert partition is None

    def test_from_networkx_drops_self_loops(self):
        nxg = nx.Graph([(0, 0), (0, 1)])
        graph, _ = from_networkx(nxg)
        assert graph.num_edges == 1

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_partition_mismatch_rejected(self, triangle_pair):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(GraphError):
            to_networkx(triangle_pair, p)

    def test_agrees_with_networkx_degree(self, triangle_pair):
        nxg = to_networkx(triangle_pair)
        for v in range(triangle_pair.num_nodes):
            assert nxg.degree[v] == triangle_pair.degree(v)


class TestCategoryGraphJson:
    def test_schema(self, paper_figure1):
        graph, partition = paper_figure1
        cg = true_category_graph(graph, partition)
        payload = json.loads(category_graph_to_json(cg))
        assert {n["name"] for n in payload["nodes"]} == {"white", "gray", "black"}
        assert len(payload["links"]) == 3

    def test_min_weight_filter(self, paper_figure1):
        graph, partition = paper_figure1
        cg = true_category_graph(graph, partition)
        payload = json.loads(category_graph_to_json(cg, min_weight=0.3))
        assert len(payload["links"]) == 2  # 1/6 edge filtered out
