"""Unit tests for graph operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    Graph,
    connected_components,
    degree_histogram,
    degree_stats,
    induced_subgraph,
    is_connected,
    largest_component,
)


class TestComponents:
    def test_connected_graph(self, triangle_pair):
        assert is_connected(triangle_pair)
        comp = connected_components(triangle_pair)
        assert int(comp.max()) == 0

    def test_disconnected(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert len({int(comp[0]), int(comp[2]), int(comp[4])}) == 3
        assert not is_connected(g)

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph.empty(0))

    def test_single_node(self):
        assert is_connected(Graph.empty(1))

    def test_largest_component(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        sub, ids = largest_component(g)
        assert sub.num_nodes == 3
        assert list(ids) == [0, 1, 2]
        assert sub.num_edges == 2

    def test_largest_component_of_empty(self):
        sub, ids = largest_component(Graph.empty(0))
        assert sub.num_nodes == 0
        assert len(ids) == 0


class TestInducedSubgraph:
    def test_basic(self, triangle_pair):
        sub = induced_subgraph(triangle_pair, np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 3  # the left triangle

    def test_cross_edges_dropped(self, triangle_pair):
        sub = induced_subgraph(triangle_pair, np.array([0, 4]))
        assert sub.num_edges == 0

    def test_relabelling_follows_input_order(self, triangle_pair):
        sub = induced_subgraph(triangle_pair, np.array([3, 0]))
        # nodes 3 and 0 are adjacent via the bridge; new ids 0 and 1
        assert sub.has_edge(0, 1)

    def test_duplicate_ids_rejected(self, triangle_pair):
        with pytest.raises(GraphError, match="unique"):
            induced_subgraph(triangle_pair, np.array([0, 0]))

    def test_out_of_range_rejected(self, triangle_pair):
        with pytest.raises(GraphError):
            induced_subgraph(triangle_pair, np.array([99]))

    def test_empty_selection(self, triangle_pair):
        sub = induced_subgraph(triangle_pair, np.array([], dtype=np.int64))
        assert sub.num_nodes == 0


class TestDegreeStats:
    def test_histogram(self, path_graph):
        hist = degree_histogram(path_graph)
        assert list(hist) == [0, 2, 3]  # two endpoints, three middles

    def test_histogram_empty(self):
        assert list(degree_histogram(Graph.empty(0))) == [0]

    def test_stats(self, path_graph):
        stats = degree_stats(path_graph)
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert stats.mean == pytest.approx(8 / 5)
        assert "degree mean" in str(stats)

    def test_stats_empty_rejected(self):
        with pytest.raises(GraphError):
            degree_stats(Graph.empty(0))
