"""Unit tests for CategoryPartition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.graph import CategoryPartition


class TestConstruction:
    def test_basic(self):
        p = CategoryPartition(np.array([0, 1, 0, 2]))
        assert p.num_nodes == 4
        assert p.num_categories == 3
        assert list(p.sizes()) == [2, 1, 1]

    def test_names(self):
        p = CategoryPartition(np.array([0, 1]), names=["a", "b"])
        assert p.names == ("a", "b")
        assert p.index_of("b") == 1

    def test_default_names(self):
        p = CategoryPartition(np.array([0, 1]))
        assert p.names == ("C0", "C1")

    def test_duplicate_names_rejected(self):
        with pytest.raises(PartitionError, match="unique"):
            CategoryPartition(np.array([0, 1]), names=["a", "a"])

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            CategoryPartition(np.array([0, 1]), names=["only-one"])

    def test_negative_labels_rejected(self):
        with pytest.raises(PartitionError):
            CategoryPartition(np.array([0, -1]))

    def test_explicit_num_categories_allows_empty(self):
        p = CategoryPartition(np.array([0, 0]), num_categories=3)
        assert p.num_categories == 3
        assert p.size(2) == 0

    def test_num_categories_too_small_rejected(self):
        with pytest.raises(PartitionError):
            CategoryPartition(np.array([0, 5]), num_categories=2)

    def test_from_mapping(self):
        p = CategoryPartition.from_mapping(3, {0: "us", 1: "fr", 2: "us"})
        assert p.names == ("fr", "us")
        assert p.category_of(0) == p.index_of("us")

    def test_from_mapping_incomplete_rejected(self):
        with pytest.raises(PartitionError):
            CategoryPartition.from_mapping(3, {0: "us", 1: "fr"})

    def test_from_blocks(self):
        p = CategoryPartition.from_blocks([2, 3])
        assert list(p.labels) == [0, 0, 1, 1, 1]

    def test_single_category(self):
        p = CategoryPartition.single_category(4)
        assert p.num_categories == 1
        assert p.size(0) == 4

    def test_labels_readonly(self):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(ValueError):
            p.labels[0] = 1


class TestQueries:
    def test_members(self):
        p = CategoryPartition(np.array([0, 1, 0, 1]))
        assert list(p.members(0)) == [0, 2]
        assert list(p.members(1)) == [1, 3]

    def test_members_bad_category(self):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            p.members(5)

    def test_category_of_bad_node(self):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            p.category_of(2)

    def test_index_of_unknown_name(self):
        p = CategoryPartition(np.array([0]), names=["a"])
        with pytest.raises(PartitionError, match="unknown category"):
            p.index_of("zzz")

    def test_relative_sizes(self):
        p = CategoryPartition(np.array([0, 0, 0, 1]))
        assert p.relative_sizes() == pytest.approx([0.75, 0.25])

    def test_volumes_and_mean_degrees(self, triangle_pair, triangle_pair_partition):
        vols = triangle_pair_partition.volumes(triangle_pair)
        assert list(vols) == [7, 7]
        means = triangle_pair_partition.mean_degrees(triangle_pair)
        assert means == pytest.approx([7 / 3, 7 / 3])

    def test_mean_degree_empty_category_is_nan(self, triangle_pair):
        p = CategoryPartition(
            np.array([0, 0, 0, 0, 0, 0]), num_categories=2
        )
        means = p.mean_degrees(triangle_pair)
        assert np.isnan(means[1])

    def test_volumes_wrong_graph_rejected(self, triangle_pair):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            p.volumes(triangle_pair)


class TestTransformations:
    def test_permute_zero_is_identity(self):
        p = CategoryPartition(np.arange(10) % 3)
        assert p.permute_fraction(0.0, rng=0) == CategoryPartition(
            p.labels, num_categories=3
        )

    def test_permute_one_reshuffles(self):
        labels = np.array([0] * 50 + [1] * 50)
        p = CategoryPartition(labels)
        permuted = p.permute_fraction(1.0, rng=0)
        assert not np.array_equal(p.labels, permuted.labels)
        assert np.array_equal(p.sizes(), permuted.sizes())

    def test_permute_bad_alpha(self):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            p.permute_fraction(1.5)

    def test_merge_by_name(self):
        p = CategoryPartition(np.array([0, 1, 2]), names=["ca", "tx", "paris"])
        merged = p.merge({"usa": ["ca", "tx"], "france": ["paris"]})
        assert merged.num_categories == 2
        assert merged.size(merged.index_of("usa")) == 2

    def test_merge_by_index(self):
        p = CategoryPartition(np.array([0, 1, 2]))
        merged = p.merge({"x": [0, 2], "y": [1]})
        assert merged.size(merged.index_of("x")) == 2

    def test_merge_missing_category_rejected(self):
        p = CategoryPartition(np.array([0, 1, 2]))
        with pytest.raises(PartitionError, match="not assigned"):
            p.merge({"x": [0, 1]})

    def test_merge_double_assignment_rejected(self):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(PartitionError, match="two groups"):
            p.merge({"x": [0, 1], "y": [1]})

    def test_keep_top(self):
        labels = np.array([0] * 5 + [1] * 3 + [2] * 1 + [3] * 1)
        p = CategoryPartition(labels, names=["big", "mid", "s1", "s2"])
        top = p.keep_top(2)
        assert top.num_categories == 3  # big, mid, rest
        assert top.names == ("big", "mid", "rest")
        assert top.size(2) == 2

    def test_keep_top_more_than_available(self):
        p = CategoryPartition(np.array([0, 1]))
        top = p.keep_top(10)
        assert top.num_categories == 2

    def test_keep_top_invalid_k(self):
        p = CategoryPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            p.keep_top(0)


class TestDunder:
    def test_eq(self):
        a = CategoryPartition(np.array([0, 1]), names=["a", "b"])
        b = CategoryPartition(np.array([0, 1]), names=["a", "b"])
        c = CategoryPartition(np.array([0, 1]), names=["a", "c"])
        assert a == b
        assert a != c
        assert a != 42

    def test_repr(self):
        p = CategoryPartition(np.array([0, 1, 1]))
        assert "num_nodes=3" in repr(p)
