"""Derived-plane store (:mod:`repro.graph.planes`).

Three contracts are pinned here:

* **Bit identity** — every chunked out-of-core builder (arc_sources,
  arc_labels, union-CSR merge, alias tables, walk cumsums) produces the
  exact bytes of its one-shot in-RAM twin at any chunk size, and a
  sweep over store-backed derivations equals the RAM sweep cold, warm,
  and through the process executor.
* **Content addressing** — keys follow source *bytes* (not identity,
  paths, or mtimes), so a rebuilt bit-identical substrate hits the
  cache across store instances (the cross-run reuse the telemetry
  ``planes.hit`` counter measures).
* **Fault tolerance** — a torn or tampered derived manifest (the
  ``corrupt-manifest:file=derived`` directive) quarantines the
  directory and rebuilds from sources instead of crashing.
"""

from __future__ import annotations

import json
import pickle
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.generators import gnm, planted_category_graph
from repro.graph.adjacency import Graph
from repro.graph.planes import (
    DerivedPlaneStore,
    PlaneWriter,
    build_arc_labels,
    build_arc_sources,
    clear_plane_memo,
    node_blocks,
    plane_store_for,
    source_fingerprint,
)
from repro.graph.storage import graph_storage, save_csr
from repro.graph.union import UnionCSR, build_union_planes, union_csr
from repro.runtime import faults, telemetry_scope
from repro.runtime.sharedmem import _MMAP_TOKEN_KIND, SharedArrayPool
from repro.sampling import StratifiedWeightedWalkSampler
from repro.sampling.alias import build_alias_planes, build_alias_tables
from repro.sampling.walks import _segmented_cumsum, build_segmented_cumsum
from repro.stats import run_nrmse_sweep

#: Chunk sizes every builder equivalence test sweeps — tiny (every run
#: its own block), awkward (runs straddle candidates), and huge (one
#: block, the one-shot layout).
CHUNKS = (1, 2, 3, 7, 64, 1 << 20)


class _RamWriter:
    """In-RAM stand-in for :class:`PlaneWriter` (builder unit tests)."""

    def __init__(self):
        self.planes: dict[str, np.ndarray] = {}

    def create(self, name, dtype, shape):
        array = np.zeros(shape, dtype=dtype)
        self.planes[name] = array
        return array


def _random_edges(n, m, seed):
    gen = np.random.default_rng(seed)
    edges = gen.integers(0, n, size=(m, 2))
    return edges[edges[:, 0] != edges[:, 1]].astype(np.int64)


@st.composite
def _csr_indptr(draw):
    degrees = draw(
        st.lists(st.integers(min_value=0, max_value=17), min_size=0, max_size=40)
    )
    return np.concatenate(
        ([0], np.cumsum(np.asarray(degrees, dtype=np.int64)))
    ).astype(np.int64)


# ----------------------------------------------------------------------
# Store mechanics: build, hit, keying, fingerprints
# ----------------------------------------------------------------------
def test_store_builds_once_then_hits(tmp_path):
    store = DerivedPlaneStore(tmp_path)
    source = np.arange(64, dtype=np.int64)
    calls = []

    def build(writer):
        calls.append(1)
        out = writer.create("doubled", np.int64, (64,))
        out[:] = source * 2

    planes = store.get_or_build("double", sources=(source,), build=build)
    assert np.array_equal(planes["doubled"], source * 2)
    assert not planes["doubled"].flags.writeable
    assert calls == [1]
    # In-process memo: same object back, no rebuild.
    again = store.get_or_build("double", sources=(source,), build=build)
    assert again["doubled"] is planes["doubled"]
    assert calls == [1]

    def boom(writer):
        raise AssertionError("a committed key must never rebuild")

    # A fresh store instance (a "second run") opens the committed
    # directory without calling build at all.
    fresh = DerivedPlaneStore(tmp_path)
    reopened = fresh.get_or_build("double", sources=(source,), build=boom)
    assert np.array_equal(reopened["doubled"], source * 2)


def test_store_counters(tmp_path):
    store = DerivedPlaneStore(tmp_path)
    source = np.arange(512, dtype=np.int64)

    def build(writer):
        writer.create("x", np.int64, (512,))[:] = source

    metrics = tmp_path / "metrics.json"
    with telemetry_scope(metrics=metrics):
        store.get_or_build("id", sources=(source,), build=build)
        store.clear_memo()
        store.get_or_build("id", sources=(source,), build=build)
    counters = json.loads(metrics.read_text())["counters"]
    assert counters["planes.built"] == 1
    assert counters["planes.hit"] == 1
    assert counters["planes.built_bytes"] == 512 * 8
    assert counters["planes.hit_bytes"] == 512 * 8
    assert counters["planes.quarantined"] == 0


def test_key_tracks_content_params_and_version(tmp_path):
    store = DerivedPlaneStore(tmp_path)
    a = np.arange(10, dtype=np.int64)
    key = store.key_of("d", sources=(a,))
    # Content, not identity: an equal copy keys the same.
    assert store.key_of("d", sources=(a.copy(),)) == key
    assert store.key_of("d", sources=(a + 1,)) != key
    assert store.key_of("d", sources=(a.astype(np.int32),)) != key
    assert store.key_of("e", sources=(a,)) != key
    assert store.key_of("d", sources=(a,), version=2) != key
    assert store.key_of("d", sources=(a,), params={"x": 1}) != key


def test_fingerprints_stable_across_rebuilt_substrates(tmp_path):
    """Two separate on-disk builds of the same planes key identically.

    This is the cross-run reuse property: run 2 streams the substrate
    into a *different* directory, but bit-identical planes carry the
    same manifest SHA-256, so every derivation over them is a cache hit.
    """
    graph = Graph.from_edges(40, _random_edges(40, 160, 3))
    csr_a = save_csr(tmp_path / "a", graph.indptr, graph.indices)
    csr_b = save_csr(tmp_path / "b", graph.indptr, graph.indices)
    fp_a = source_fingerprint(csr_a.indptr)
    fp_b = source_fingerprint(csr_b.indptr)
    assert fp_a == fp_b
    assert fp_a["kind"] == "plane"  # resolved from the manifest, no read
    # A RAM copy of the same bytes hashes by content instead — still
    # deterministic, just a different (self-consistent) fingerprint.
    ram = source_fingerprint(np.asarray(csr_a.indptr).copy())
    assert ram["kind"] == "content"
    assert ram == source_fingerprint(np.asarray(csr_b.indptr).copy())
    # A window into a plane is NOT the plane the manifest hashed.
    assert source_fingerprint(csr_a.indices[1:])["kind"] == "content"


# ----------------------------------------------------------------------
# Fault tolerance: torn + tampered manifests
# ----------------------------------------------------------------------
def test_corrupt_manifest_fault_quarantines_and_rebuilds(tmp_path):
    store = DerivedPlaneStore(tmp_path)
    source = np.arange(128, dtype=np.int64)

    def build(writer):
        writer.create("x", np.int64, (128,))[:] = source + 7

    metrics = tmp_path / "metrics.json"
    with faults.inject("corrupt-manifest:file=derived") as plan:
        with telemetry_scope(metrics=metrics):
            planes = store.get_or_build("plus7", sources=(source,), build=build)
        assert plan.pending("corrupt-manifest") == 0
    assert np.array_equal(planes["x"], source + 7)
    counters = json.loads(metrics.read_text())["counters"]
    assert counters["planes.quarantined"] == 1
    assert counters["planes.built"] == 1
    quarantined = list((tmp_path / "plus7").glob("*.corrupt*"))
    assert quarantined, "the torn directory should be renamed aside"
    # The recovered commit is clean: a fresh store hits without building.
    fresh = DerivedPlaneStore(tmp_path)

    def boom(writer):
        raise AssertionError("recovered key must reopen, not rebuild")

    assert np.array_equal(
        fresh.get_or_build("plus7", sources=(source,), build=boom)["x"],
        source + 7,
    )


def test_tampered_manifest_quarantines_and_rebuilds(tmp_path):
    store = DerivedPlaneStore(tmp_path)
    source = np.arange(100, dtype=np.float64)
    calls = []

    def build(writer):
        calls.append(1)
        writer.create("x", np.float64, (100,))[:] = source * 0.5

    store.get_or_build("half", sources=(source,), build=build)
    (key_dir,) = [
        d for d in (tmp_path / "half").iterdir() if not d.name.startswith(".")
    ]
    (key_dir / "manifest.json").write_text("{ not json")
    fresh = DerivedPlaneStore(tmp_path)
    planes = fresh.get_or_build("half", sources=(source,), build=build)
    assert np.array_equal(planes["x"], source * 0.5)
    assert calls == [1, 1]
    assert list((tmp_path / "half").glob("*.corrupt*"))


def test_fault_file_param_targets_one_store(tmp_path):
    """``file=derived`` must never tear a base-CSR manifest."""
    graph = Graph.from_edges(12, _random_edges(12, 30, 2))
    with faults.inject("corrupt-manifest:file=derived") as plan:
        save_csr(tmp_path, graph.indptr, graph.indices)
        assert plan.pending("corrupt-manifest") == 1  # untouched budget


def test_writer_rejects_duplicate_and_bad_names(tmp_path):
    writer = PlaneWriter(tmp_path)
    writer.create("x", np.int64, 4)
    with pytest.raises(StorageError, match="already created"):
        writer.create("x", np.int64, 4)
    with pytest.raises(StorageError, match="invalid plane name"):
        writer.create("../escape", np.int64, 4)


# ----------------------------------------------------------------------
# Chunked builders == one-shot twins, at every chunk size
# ----------------------------------------------------------------------
def test_node_blocks_cover_whole_runs():
    indptr = np.array([0, 3, 3, 10, 11, 20], dtype=np.int64)
    for chunk in CHUNKS:
        blocks = list(node_blocks(indptr, chunk))
        # Contiguous, exhaustive, and at least one node per block.
        assert blocks[0][0] == 0 and blocks[-1][1] == 5
        for (a, b, lo, hi), (a2, _, lo2, _) in zip(blocks, blocks[1:]):
            assert b == a2 and hi == lo2
        for a, b, lo, hi in blocks:
            assert b > a
            assert lo == int(indptr[a]) and hi == int(indptr[b])


@given(indptr=_csr_indptr())
@settings(max_examples=30, deadline=None)
def test_chunked_arc_sources_matches_one_shot(indptr):
    expected = np.repeat(
        np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr)
    )
    for chunk in CHUNKS:
        writer = _RamWriter()
        build_arc_sources(writer, indptr, chunk)
        assert np.array_equal(writer.planes["arc_sources"], expected)


@given(indptr=_csr_indptr(), seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_chunked_cumsum_bit_identical(indptr, seed):
    gen = np.random.default_rng(seed)
    values = gen.uniform(0.1, 3.0, size=int(indptr[-1]))
    expected = _segmented_cumsum(values, indptr)
    for chunk in CHUNKS:
        writer = _RamWriter()
        build_segmented_cumsum(writer, values, indptr, chunk)
        assert np.array_equal(writer.planes["cumsum"], expected)


@given(indptr=_csr_indptr(), seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_chunked_alias_bit_identical(indptr, seed):
    gen = np.random.default_rng(seed)
    weights = gen.uniform(0.1, 5.0, size=int(indptr[-1]))
    # Strengths exactly as the weighted walk computes them.
    cumulative = _segmented_cumsum(weights, indptr)
    degrees = np.diff(indptr)
    if len(weights):
        run_ends = np.maximum(indptr[1:] - 1, 0)
        strengths = np.where(degrees > 0, cumulative[run_ends], 0.0)
    else:
        strengths = np.zeros(len(indptr) - 1)
    for provided in (None, strengths):
        one_shot = build_alias_tables(indptr, weights, provided)
        for chunk in CHUNKS:
            writer = _RamWriter()
            build_alias_planes(writer, indptr, weights, provided, chunk)
            assert np.array_equal(writer.planes["prob"], one_shot.prob)
            assert np.array_equal(writer.planes["alias"], one_shot.alias)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chunked_union_merge_bit_identical(seed):
    g1 = Graph.from_edges(25, _random_edges(25, 70, seed))
    g2 = gnm(25, 40, rng=seed + 100)
    g3 = gnm(25, 15, rng=seed + 200)
    union = UnionCSR([g1, g2, g3])  # in-RAM scatter (no storage scope)
    for chunk in CHUNKS:
        writer = _RamWriter()
        build_union_planes(writer, [g1, g2, g3], union.indptr, chunk)
        assert np.array_equal(writer.planes["indices"], np.asarray(union.indices))
        assert np.array_equal(
            writer.planes["arc_relations"], np.asarray(union.arc_relations)
        )


@pytest.mark.parametrize("chunk", CHUNKS)
def test_chunked_arc_labels_matches_gather(chunk):
    gen = np.random.default_rng(9)
    labels = gen.integers(0, 6, size=50).astype(np.int64)
    indices = gen.integers(0, 50, size=333).astype(np.int64)
    writer = _RamWriter()
    build_arc_labels(writer, labels, indices, chunk)
    assert np.array_equal(writer.planes["arc_labels"], labels[indices])


# ----------------------------------------------------------------------
# End-to-end under the memmap storage plane
# ----------------------------------------------------------------------
def _file_base(array):
    base = array
    while base is not None and not isinstance(base, np.memmap):
        base = base.base
    return base


def _world(rng=5):
    return planted_category_graph(k=5, scale=60, rng=rng)


def test_derivations_spill_and_match_ram(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    ram_graph, ram_part = _world()
    ram_relation = gnm(ram_graph.num_nodes, ram_graph.num_edges // 3, rng=11)
    ram_union = UnionCSR([ram_graph, ram_relation])
    ram_sampler = StratifiedWeightedWalkSampler(ram_graph, ram_part, next_hop="alias")
    with graph_storage("memmap", directory=tmp_path):
        graph, part = _world()
        relation = gnm(graph.num_nodes, graph.num_edges // 3, rng=11)
        # Every derivation family: bit-identical AND file-backed.
        derived = {
            "arc_sources": graph.arc_sources,
            "arc_labels": part.arc_labels(graph),
        }
        merged = union_csr([graph, relation])
        derived["union_indices"] = merged.indices
        derived["union_relations"] = merged.arc_relations
        derived["union_sources"] = merged.arc_sources()
        sampler = StratifiedWeightedWalkSampler(graph, part, next_hop="alias")
        derived["cumsum"] = sampler._local_cumulative
        derived["prob"] = sampler._alias_tables.prob
        derived["alias"] = sampler._alias_tables.alias
        expected = {
            "arc_sources": ram_graph.arc_sources,
            "arc_labels": ram_part.arc_labels(ram_graph),
            "union_indices": ram_union.indices,
            "union_relations": ram_union.arc_relations,
            "union_sources": ram_union.arc_sources(),
            "cumsum": ram_sampler._local_cumulative,
            "prob": ram_sampler._alias_tables.prob,
            "alias": ram_sampler._alias_tables.alias,
        }
        for name, array in derived.items():
            assert np.array_equal(np.asarray(array), np.asarray(expected[name])), name
            base = _file_base(array)
            assert base is not None and str(base.filename).startswith(
                str(tmp_path)
            ), f"{name} is not file-backed"
        # The union's arc_sources is cached (the old per-call np.repeat).
        assert np.shares_memory(merged.arc_sources(), merged.arc_sources())


def test_warm_store_skips_derivation(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    metrics_cold = tmp_path / "cold.json"
    metrics_warm = tmp_path / "warm.json"
    with graph_storage("memmap", directory=tmp_path / "store"):
        graph, part = _world()
        with telemetry_scope(metrics=metrics_cold):
            StratifiedWeightedWalkSampler(graph, part, next_hop="alias")
        clear_plane_memo()  # forget the open handles, keep the disk cache
        with telemetry_scope(metrics=metrics_warm):
            warm = StratifiedWeightedWalkSampler(graph, part, next_hop="alias")
    cold_counters = json.loads(metrics_cold.read_text())["counters"]
    warm_counters = json.loads(metrics_warm.read_text())["counters"]
    assert cold_counters["planes.built"] >= 2  # cumsum + alias tables
    assert warm_counters["planes.built"] == 0
    assert warm_counters["planes.hit"] >= 2
    assert warm_counters["planes.hit_bytes"] > 0
    assert _file_base(warm._local_cumulative) is not None


LADDER = (30, 90)
REPLICATIONS = 4
SEED = 77


def _alias_sweep(graph, partition, **kwargs):
    return run_nrmse_sweep(
        graph,
        partition,
        StratifiedWeightedWalkSampler(graph, partition, next_hop="alias"),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        **kwargs,
    )


def _sweeps_equal(a, b):
    if not np.array_equal(a.sample_sizes, b.sample_sizes):
        return False
    for kind in ("induced", "star"):
        for attr in ("size_nrmse", "weight_nrmse", "size_coverage"):
            if not np.array_equal(
                getattr(a, attr)[kind], getattr(b, attr)[kind], equal_nan=True
            ):
                return False
    return True


def test_alias_sweep_bit_identical_cold_warm_and_parallel(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    ram_graph, ram_part = _world()
    reference = _alias_sweep(ram_graph, ram_part, executor="serial")
    with graph_storage("memmap", directory=tmp_path):
        graph, part = _world()
        cold = _alias_sweep(graph, part, executor="serial")
        clear_plane_memo()
        warm = _alias_sweep(graph, part, executor="serial")
        for workers in (1, 2):
            parallel = _alias_sweep(
                graph, part, executor="process", workers=workers
            )
            assert _sweeps_equal(parallel, reference), f"workers={workers}"
    assert _sweeps_equal(cold, reference)
    assert _sweeps_equal(warm, reference)


def test_derived_planes_ship_as_mmap_tokens(tmp_path, monkeypatch):
    """Workers map derived planes from disk: zero publish bytes."""
    from repro.runtime import sharedmem

    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    with graph_storage("memmap", directory=tmp_path):
        graph, part = _world()
        sampler = StratifiedWeightedWalkSampler(graph, part, next_hop="alias")
    with SharedArrayPool(threshold=1) as pool:
        payload = sharedmem.dumps({"sampler": sampler}, pool)
        for plane in (
            sampler._local_cumulative,
            sampler._alias_tables.prob,
            sampler._alias_tables.alias,
            graph.arc_sources,
        ):
            # mmap tokens name the file — nothing copied into /dev/shm.
            assert pool.publish(plane)[0] == _MMAP_TOKEN_KIND
        clone = sharedmem.loads(payload)["sampler"]
        assert np.array_equal(
            clone._local_cumulative, sampler._local_cumulative
        )
        assert np.array_equal(
            clone._alias_tables.prob, sampler._alias_tables.prob
        )
        # This load ran in-process: drop the attachment cache before the
        # pool unlinks, or the dead mappings outlive the test (and get
        # fork-inherited by any worker spawned later).
        names = pool.block_names
        del clone
        sharedmem.release(names)


def test_raw_memmap_planes_tokenize(tmp_path):
    """The pickler ships bare np.memmap planes by token, not by copy."""
    from repro.runtime import sharedmem

    graph = Graph.from_edges(30, _random_edges(30, 120, 4))
    csr = save_csr(tmp_path, graph.indptr, graph.indices)
    raw = csr._planes["indices"]
    assert isinstance(raw, np.memmap)
    with SharedArrayPool(threshold=1) as pool:
        payload = sharedmem.dumps({"plane": raw}, pool)
        assert pool.publish(raw)[0] == _MMAP_TOKEN_KIND
        clone = sharedmem.loads(payload)["plane"]
        assert np.array_equal(clone, np.asarray(raw))
        names = pool.block_names
        del clone
        sharedmem.release(names)


def test_chunked_build_peak_memory_bounded(tmp_path):
    """Peak traced RAM during construction follows the chunk, not the plane."""
    n, degree = 120_000, 16
    chunk = 1 << 14
    indptr = np.arange(0, (n + 1) * degree, degree, dtype=np.int64)
    gen = np.random.default_rng(0)
    weights = gen.uniform(0.5, 2.0, size=n * degree)
    plane_bytes = weights.nbytes  # 15 MiB per output plane
    writer = PlaneWriter(tmp_path)
    tracemalloc.start()
    try:
        build_segmented_cumsum(writer, weights, indptr, chunk)
        build_alias_planes(writer, indptr, weights, None, chunk)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # Outputs are w+ memmaps (untracked OS pages); the builders' Python
    # allocations are block temporaries — a small multiple of the chunk.
    assert peak < plane_bytes // 3, f"peak {peak} vs plane {plane_bytes}"
    assert peak < 64 * chunk * 8, f"peak {peak} not bounded by chunk {chunk}"


def test_planes_counters_always_in_metrics(tmp_path):
    metrics = tmp_path / "metrics.json"
    with telemetry_scope(metrics=metrics):
        pass
    counters = json.loads(metrics.read_text())["counters"]
    for key in (
        "planes.built",
        "planes.built_bytes",
        "planes.hit",
        "planes.hit_bytes",
        "planes.quarantined",
    ):
        assert key in counters and counters[key] == 0


def test_ram_mode_stays_in_ram(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    monkeypatch.delenv("REPRO_GRAPH_STORAGE", raising=False)
    graph, part = _world()
    assert plane_store_for(graph.indptr, nbytes=10**9) is None
    assert _file_base(graph.arc_sources) is None
    sampler = StratifiedWeightedWalkSampler(graph, part, next_hop="alias")
    assert _file_base(sampler._local_cumulative) is None


def test_threshold_keeps_micro_planes_in_ram(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", str(1 << 16))
    with graph_storage("memmap", directory=tmp_path):
        assert plane_store_for(np.arange(4), nbytes=1024) is None
        assert plane_store_for(np.arange(4), nbytes=1 << 20) is not None
