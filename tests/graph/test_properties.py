"""Property-based tests (hypothesis) for the graph substrate invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CategoryPartition,
    Graph,
    GraphBuilder,
    cut_matrix,
    true_category_graph,
)


@st.composite
def edge_lists(draw, max_nodes: int = 25, max_edges: int = 60):
    """Random (num_nodes, edges) pairs with valid, loop-free endpoints."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    return n, edges


@st.composite
def graphs_with_partitions(draw):
    """A random graph together with a random category partition."""
    n, edges = draw(edge_lists())
    num_categories = draw(st.integers(min_value=1, max_value=4))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_categories - 1),
            min_size=n,
            max_size=n,
        )
    )
    graph = Graph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    partition = CategoryPartition(
        np.asarray(labels, dtype=np.int64), num_categories=num_categories
    )
    return graph, partition


@given(edge_lists())
@settings(max_examples=60)
def test_degree_sum_is_twice_edge_count(case):
    n, edges = case
    g = Graph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    assert int(g.degrees().sum()) == 2 * g.num_edges


@given(edge_lists())
@settings(max_examples=60)
def test_adjacency_runs_sorted_and_symmetric(case):
    n, edges = case
    g = Graph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    for v in range(n):
        nbrs = g.neighbors(v)
        assert np.all(np.diff(nbrs) > 0)  # strictly sorted => no duplicates
        for u in nbrs:
            assert v in g.neighbors(int(u))  # symmetry


@given(edge_lists())
@settings(max_examples=60)
def test_has_edge_agrees_with_edge_array(case):
    n, edges = case
    g = Graph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    in_array = {tuple(e) for e in g.edge_array()}
    for u, v in {(min(a, b), max(a, b)) for a, b in edges}:
        assert g.has_edge(u, v)
        assert (u, v) in in_array


@given(edge_lists())
@settings(max_examples=40)
def test_builder_incremental_equals_batch(case):
    n, edges = case
    batch = Graph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    builder = GraphBuilder(n)
    for u, v in edges:
        builder.add_edge(u, v)
    assert builder.build() == batch


@given(graphs_with_partitions())
@settings(max_examples=50)
def test_partition_sizes_sum_to_node_count(case):
    graph, partition = case
    assert int(partition.sizes().sum()) == graph.num_nodes
    expected = 1.0 if graph.num_nodes else 0.0
    assert abs(partition.relative_sizes().sum() - expected) < 1e-12


@given(graphs_with_partitions())
@settings(max_examples=50)
def test_partition_volumes_sum_to_graph_volume(case):
    graph, partition = case
    assert int(partition.volumes(graph).sum()) == graph.volume()


@given(graphs_with_partitions())
@settings(max_examples=40)
def test_cut_matrix_matches_brute_force(case):
    graph, partition = case
    cuts = cut_matrix(graph, partition)
    c = partition.num_categories
    brute = np.zeros((c, c), dtype=np.int64)
    for u, v in graph.edges():
        a, b = partition.category_of(u), partition.category_of(v)
        if a == b:
            brute[a, a] += 1
        else:
            brute[a, b] += 1
            brute[b, a] += 1
    assert np.array_equal(cuts, brute)


@given(graphs_with_partitions())
@settings(max_examples=40)
def test_true_weights_are_probabilities(case):
    graph, partition = case
    cg = true_category_graph(graph, partition)
    w = cg.weights
    off_diag = w[~np.eye(len(w), dtype=bool)]
    finite = off_diag[np.isfinite(off_diag)]
    assert np.all(finite >= 0.0)
    assert np.all(finite <= 1.0)


@given(graphs_with_partitions())
@settings(max_examples=40)
def test_cut_totals_match_edge_count(case):
    graph, partition = case
    cuts = cut_matrix(graph, partition)
    inter = np.triu(cuts, k=1).sum()
    intra = np.trace(cuts)
    assert inter + intra == graph.num_edges


@given(
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40)
def test_permute_fraction_preserves_sizes(n, alpha, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=n)
    partition = CategoryPartition(labels, num_categories=3)
    permuted = partition.permute_fraction(alpha, rng=rng)
    assert np.array_equal(partition.sizes(), permuted.sizes())
