"""Out-of-core CSR storage plane (:mod:`repro.graph.storage`).

The plane's one contract is byte identity: a graph streamed to
memmap-backed planes on disk must equal the in-RAM build bit for bit —
same indptr, same indices — whatever the chunk size, and a sweep run
against the mapped graph must reproduce the RAM sweep at every worker
count. These tests pin that contract, plus the failure modes of the
on-disk format (missing/torn/corrupt manifests, checksum mismatches).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.generators import gnm, planted_category_graph
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.storage import (
    MANIFEST_NAME,
    MemmapCSR,
    StreamingCSRBuilder,
    active_storage_mode,
    chunk_edges,
    edge_chunks,
    graph_storage,
    open_csr,
    save_csr,
    stream_graph,
)
from repro.runtime import faults
from repro.sampling import RandomWalkSampler
from repro.stats import run_nrmse_sweep


def _random_edges(n, m, seed):
    gen = np.random.default_rng(seed)
    edges = gen.integers(0, n, size=(m, 2))
    return edges[edges[:, 0] != edges[:, 1]].astype(np.int64)


def _graphs_equal(a, b):
    return np.array_equal(np.asarray(a.indptr), np.asarray(b.indptr)) and (
        np.array_equal(np.asarray(a.indices), np.asarray(b.indices))
    )


# ----------------------------------------------------------------------
# save_csr / open_csr round trips
# ----------------------------------------------------------------------
def test_save_open_round_trip(tmp_path):
    graph = Graph.from_edges(30, _random_edges(30, 120, 0))
    csr = save_csr(tmp_path, graph.indptr, graph.indices)
    assert csr.num_nodes == 30
    assert csr.num_arcs == len(graph.indices)
    reopened = open_csr(tmp_path, verify=True)
    assert _graphs_equal(reopened.graph(), graph)
    reopened.close()
    csr.close()


def test_weights_plane_round_trip(tmp_path):
    graph = Graph.from_edges(10, _random_edges(10, 40, 1))
    weights = np.arange(len(graph.indices), dtype=np.float64)
    save_csr(tmp_path, graph.indptr, graph.indices, weights=weights)
    csr = open_csr(tmp_path, verify=True)
    assert np.array_equal(np.asarray(csr.weights), weights)


def test_open_missing_manifest(tmp_path):
    with pytest.raises(StorageError, match="manifest"):
        open_csr(tmp_path / "nowhere")


def test_open_torn_manifest(tmp_path):
    graph = Graph.from_edges(12, _random_edges(12, 30, 2))
    save_csr(tmp_path, graph.indptr, graph.indices)
    manifest = tmp_path / MANIFEST_NAME
    raw = manifest.read_bytes()
    manifest.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(StorageError, match="torn or corrupt"):
        open_csr(tmp_path)


def test_open_manifest_missing_planes(tmp_path):
    graph = Graph.from_edges(12, _random_edges(12, 30, 3))
    save_csr(tmp_path, graph.indptr, graph.indices)
    manifest = tmp_path / MANIFEST_NAME
    payload = json.loads(manifest.read_text())
    del payload["planes"]["indices"]
    manifest.write_text(json.dumps(payload))
    with pytest.raises(StorageError, match="missing plane"):
        open_csr(tmp_path)


def test_checksum_mismatch_detected_on_verify(tmp_path):
    graph = Graph.from_edges(12, _random_edges(12, 30, 4))
    save_csr(tmp_path, graph.indptr, graph.indices)
    plane = tmp_path / "indices.npy"
    data = bytearray(plane.read_bytes())
    data[-1] ^= 0xFF
    plane.write_bytes(bytes(data))
    with pytest.raises(StorageError, match="SHA-256"):
        open_csr(tmp_path, verify=True)
    # Without verify the plane still maps (checksums are opt-in).
    open_csr(tmp_path).close()


def test_corrupt_manifest_fault_directive(tmp_path):
    """The chaos path: a torn manifest injected right after the write.

    ``save_csr`` reopens the store it just wrote, so the tear surfaces
    immediately as a :class:`StorageError` — the same error a reader
    would hit after a mid-write crash. Rebuilding recovers the store.
    """
    graph = Graph.from_edges(12, _random_edges(12, 30, 5))
    with faults.inject("corrupt-manifest") as plan:
        with pytest.raises(StorageError, match="torn or corrupt"):
            save_csr(tmp_path, graph.indptr, graph.indices)
        assert plan.pending("corrupt-manifest") == 0
    with pytest.raises(StorageError, match="torn or corrupt"):
        open_csr(tmp_path)
    # Rebuilding over the torn directory recovers it.
    save_csr(tmp_path, graph.indptr, graph.indices)
    assert _graphs_equal(open_csr(tmp_path, verify=True).graph(), graph)


# ----------------------------------------------------------------------
# Streaming builder == one-shot builder, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_arcs", [7, 64, 1 << 20])
def test_streaming_build_matches_one_shot(tmp_path, chunk_arcs):
    for seed in range(4):
        n = 60 + 10 * seed
        edges = _random_edges(n, 50 * (seed + 2), seed)
        one_shot = Graph.from_edges(n, edges)
        builder = StreamingCSRBuilder(n, chunk_arcs=chunk_arcs)
        for chunk in chunk_edges(edges, max(chunk_arcs // 2, 3)):
            builder.add_edges(chunk)
        csr = builder.build(tmp_path / f"g{chunk_arcs}-{seed}")
        assert _graphs_equal(csr.graph(), one_shot)


def test_stream_graph_helper(tmp_path):
    edges = _random_edges(40, 200, 9)
    expected = Graph.from_edges(40, edges)
    csr = stream_graph(chunk_edges(edges, 17), 40, directory=tmp_path / "g")
    assert _graphs_equal(csr.graph(), expected)


def test_streaming_build_empty_graph(tmp_path):
    csr = StreamingCSRBuilder(5).build(tmp_path / "empty")
    graph = csr.graph()
    assert graph.num_nodes == 5
    assert graph.num_edges == 0
    assert _graphs_equal(open_csr(tmp_path / "empty", verify=True).graph(), graph)


def test_edge_chunks_round_trip(tmp_path):
    edges = _random_edges(50, 300, 10)
    graph = Graph.from_edges(50, edges)
    rebuilt = Graph.from_edges(
        50, np.concatenate(list(edge_chunks(graph, chunk_size=13)))
    )
    assert _graphs_equal(rebuilt, graph)


# ----------------------------------------------------------------------
# The GraphBuilder seam: ambient storage mode
# ----------------------------------------------------------------------
def test_graph_storage_scope_builds_memmap_backed_graph(tmp_path):
    edges = _random_edges(40, 150, 11)
    ram = Graph.from_edges(40, edges)
    with graph_storage("memmap", directory=tmp_path):
        assert active_storage_mode() == "memmap"
        mapped = Graph.from_edges(40, edges)
    assert active_storage_mode() == "ram"
    assert _graphs_equal(mapped, ram)
    # The mapped graph's planes really live on disk.
    base = np.asarray(mapped.indptr)
    while getattr(base, "base", None) is not None and not isinstance(
        base, np.memmap
    ):
        base = base.base
    assert isinstance(base, np.memmap)


def test_env_knob_selects_memmap(monkeypatch):
    monkeypatch.setenv("REPRO_GRAPH_STORAGE", "memmap")
    assert active_storage_mode() == "memmap"
    # An explicit scope overrides the environment.
    with graph_storage("ram"):
        assert active_storage_mode() == "ram"


def test_env_knob_rejects_unknown_mode(monkeypatch):
    monkeypatch.setenv("REPRO_GRAPH_STORAGE", "floppy")
    with pytest.raises(StorageError, match="floppy"):
        active_storage_mode()


def test_builder_streams_under_memmap_scope(tmp_path):
    """add_edges chunks fed under the scope spill through the streaming path."""
    edges = _random_edges(80, 500, 12)
    expected = Graph.from_edges(80, edges)
    with graph_storage("memmap", directory=tmp_path):
        builder = GraphBuilder(80)
        for chunk in chunk_edges(edges, 37):
            builder.add_edges(chunk)
        mapped = builder.build()
    assert _graphs_equal(mapped, expected)


# ----------------------------------------------------------------------
# End-to-end: memmap-backed sweep bit-identical to in-RAM sweep
# ----------------------------------------------------------------------
LADDER = (30, 90)
REPLICATIONS = 4
SEED = 77


@pytest.fixture(scope="module")
def sweep_world():
    graph, partition = planted_category_graph(k=6, scale=120, rng=5)
    return graph, partition


def _sweep(graph, partition, **kwargs):
    return run_nrmse_sweep(
        graph,
        partition,
        RandomWalkSampler(graph),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        **kwargs,
    )


def _sweeps_equal(a, b):
    if not np.array_equal(a.sample_sizes, b.sample_sizes):
        return False
    for kind in ("induced", "star"):
        for attr in ("size_nrmse", "weight_nrmse", "size_coverage"):
            if not np.array_equal(
                getattr(a, attr)[kind], getattr(b, attr)[kind], equal_nan=True
            ):
                return False
    return True


@pytest.mark.parametrize("workers", [1, 2])
def test_memmap_sweep_bit_identical_to_ram(sweep_world, tmp_path, workers):
    ram_graph, partition = sweep_world
    with graph_storage("memmap", directory=tmp_path):
        mapped_graph, mapped_partition = planted_category_graph(
            k=6, scale=120, rng=5
        )
    assert _graphs_equal(mapped_graph, ram_graph)
    assert np.array_equal(mapped_partition.labels, partition.labels)
    reference = _sweep(ram_graph, partition, executor="serial")
    mapped = _sweep(
        mapped_graph, mapped_partition, executor="process", workers=workers
    )
    assert _sweeps_equal(mapped, reference)
