"""Tests for the union-multigraph CSR (`repro.graph.union`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.generators import gnm
from repro.graph import Graph, UnionCSR, union_csr


@pytest.fixture(scope="module")
def relations():
    return (gnm(80, 300, rng=0), gnm(80, 150, rng=1), gnm(80, 40, rng=2))


class TestConstruction:
    def test_indptr_matches_total_degrees(self, relations):
        union = UnionCSR(relations)
        total = sum(g.degrees() for g in relations)
        assert np.array_equal(np.diff(union.indptr), total)
        assert np.array_equal(union.total_degrees, total)
        assert union.num_arcs == int(total.sum())
        assert union.num_relations == 3
        assert union.num_nodes == 80

    def test_runs_concatenate_in_relation_order(self, relations):
        union = UnionCSR(relations)
        for v in range(union.num_nodes):
            run = union.indices[union.indptr[v] : union.indptr[v + 1]]
            expected = np.concatenate([g.neighbors(v) for g in relations])
            assert np.array_equal(run, expected), f"node {v}"

    def test_arc_relations_align(self, relations):
        union = UnionCSR(relations)
        for rel, graph in enumerate(relations):
            mask = union.arc_relations == rel
            assert int(mask.sum()) == len(graph.indices)
            # Arcs tagged with this relation reproduce its CSR exactly.
            assert np.array_equal(union.indices[mask], graph.indices)

    def test_single_relation_is_the_graph(self):
        g = gnm(40, 100, rng=3)
        union = UnionCSR([g])
        assert np.array_equal(union.indptr, g.indptr)
        assert np.array_equal(union.indices, g.indices)
        assert np.all(union.arc_relations == 0)

    def test_empty_relations_allowed(self):
        union = UnionCSR([Graph.empty(5), Graph.empty(5)])
        assert union.num_arcs == 0
        assert np.all(union.total_degrees == 0)
        arcs, counts = union.arc_multiplicities()
        assert len(arcs) == 0 and len(counts) == 0

    def test_mismatched_node_sets_rejected(self):
        with pytest.raises(GraphError):
            UnionCSR([gnm(10, 20, rng=0), gnm(11, 20, rng=0)])

    def test_no_relations_rejected(self):
        with pytest.raises(GraphError):
            UnionCSR([])

    def test_non_graph_rejected(self):
        with pytest.raises(GraphError):
            union_csr([gnm(5, 4, rng=0), "not a graph"])


class TestProperties:
    def test_degree_sums_equal_relation_degree_sums(self, relations):
        union = union_csr(relations)
        assert np.array_equal(
            union.total_degrees, sum(g.degrees() for g in relations)
        )

    def test_arc_multiplicities_symmetric(self, relations):
        union = union_csr(relations)
        arcs, counts = union.arc_multiplicities()
        table = {(int(u), int(v)): int(c) for (u, v), c in zip(arcs, counts)}
        for (u, v), c in table.items():
            assert table[(v, u)] == c, f"arc ({u}, {v})"

    def test_multiplicity_counts_relations_carrying_the_edge(self):
        shared = Graph.from_edges(3, [(0, 1)])
        extra = Graph.from_edges(3, [(0, 1), (0, 2)])
        union = union_csr((shared, extra))
        arcs, counts = union.arc_multiplicities()
        table = {(int(u), int(v)): int(c) for (u, v), c in zip(arcs, counts)}
        assert table[(0, 1)] == 2 and table[(1, 0)] == 2
        assert table[(0, 2)] == 1 and table[(2, 0)] == 1

    def test_arc_sources_align_with_indptr(self, relations):
        union = union_csr(relations)
        src = union.arc_sources()
        for v in range(union.num_nodes):
            assert np.all(src[union.indptr[v] : union.indptr[v + 1]] == v)


class TestCache:
    def test_same_relation_tuple_shares_instance(self, relations):
        assert union_csr(relations) is union_csr(relations)
        assert union_csr(list(relations)) is union_csr(relations)

    def test_different_order_is_a_different_multigraph(self, relations):
        a = union_csr(relations)
        b = union_csr(relations[::-1])
        assert a is not b
        # Same total degrees, different arc layout (relation order).
        assert np.array_equal(a.total_degrees, b.total_degrees)

    def test_views_are_read_only(self, relations):
        union = union_csr(relations)
        for array in (
            union.indptr,
            union.indices,
            union.arc_relations,
            union.total_degrees,
        ):
            with pytest.raises(ValueError):
                array[0] = 0


class TestWeakCache:
    """union_csr memoizes without pinning merges for the process lifetime."""

    def test_entries_die_with_their_last_reference(self):
        import gc
        import weakref

        from repro.graph.union import _UNION_CACHE

        relations = (gnm(40, 60, rng=21), gnm(40, 50, rng=22))
        merged = union_csr(relations)
        assert union_csr(relations) is merged  # cached while referenced
        probe = weakref.ref(merged)
        before = len(_UNION_CACHE)
        del merged
        gc.collect()
        assert probe() is None, "cache kept the merge alive"
        assert len(_UNION_CACHE) < before

    def test_remerge_after_eviction_is_equivalent(self):
        import gc

        relations = (gnm(25, 30, rng=31), gnm(25, 20, rng=32))
        first_indices = union_csr(relations).indices.copy()
        gc.collect()
        again = union_csr(relations)
        np.testing.assert_array_equal(again.indices, first_indices)
