"""Tests for the gravity mixing model (Section 9 follow-up)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.graph import CategoryGraph
from repro.models import fit_gravity_model, pair_distance_feature


def _synthetic_graph(
    num_categories: int = 12,
    slope: float = -0.8,
    noise: float = 0.05,
    rng: int = 0,
) -> tuple[CategoryGraph, np.ndarray]:
    """A category graph whose log-weights follow an exact gravity law."""
    gen = np.random.default_rng(rng)
    positions = np.sort(gen.uniform(0, 10, size=num_categories))
    distance = pair_distance_feature(positions)
    log_w = -3.0 + slope * distance + gen.normal(0, noise, distance.shape)
    log_w = (log_w + log_w.T) / 2
    weights = np.exp(log_w)
    np.fill_diagonal(weights, np.nan)
    sizes = np.full(num_categories, 100.0)
    return CategoryGraph(sizes, weights), positions


class TestFitGravityModel:
    def test_recovers_planted_slope(self):
        graph, positions = _synthetic_graph(slope=-0.8, noise=0.02)
        fit = fit_gravity_model(
            graph,
            {"distance": pair_distance_feature(positions)},
            permutations=200,
            rng=1,
        )
        assert fit.slope("distance") == pytest.approx(-0.8, abs=0.05)
        assert fit.intercept == pytest.approx(-3.0, abs=0.15)
        assert fit.r_squared > 0.95

    def test_significant_slope_has_small_p(self):
        graph, positions = _synthetic_graph(slope=-0.8, noise=0.05)
        fit = fit_gravity_model(
            graph,
            {"distance": pair_distance_feature(positions)},
            permutations=300,
            rng=2,
        )
        assert fit.p_values[0] < 0.02

    def test_null_feature_has_large_p(self):
        graph, positions = _synthetic_graph(slope=0.0, noise=0.3, rng=3)
        fit = fit_gravity_model(
            graph,
            {"distance": pair_distance_feature(positions)},
            permutations=300,
            rng=4,
        )
        assert fit.p_values[0] > 0.05

    def test_predict(self):
        graph, positions = _synthetic_graph(slope=-0.5, noise=0.01, rng=5)
        fit = fit_gravity_model(
            graph,
            {"distance": pair_distance_feature(positions)},
            permutations=0,
        )
        predicted = fit.predict(np.array([[0.0], [2.0]]))
        # log-linear: doubling distance scales w by exp(slope * delta)
        assert predicted[1] / predicted[0] == pytest.approx(
            np.exp(fit.slope("distance") * 2.0), rel=1e-9
        )

    def test_predict_shape_mismatch(self):
        graph, positions = _synthetic_graph()
        fit = fit_gravity_model(
            graph, {"distance": pair_distance_feature(positions)}, permutations=0
        )
        with pytest.raises(EstimationError):
            fit.predict(np.ones((2, 3)))

    def test_multiple_features(self):
        graph, positions = _synthetic_graph(slope=-0.6, noise=0.02, rng=6)
        rng = np.random.default_rng(7)
        irrelevant = rng.random(
            (graph.num_categories, graph.num_categories)
        )
        irrelevant = (irrelevant + irrelevant.T) / 2
        fit = fit_gravity_model(
            graph,
            {
                "distance": pair_distance_feature(positions),
                "noise": irrelevant,
            },
            permutations=200,
            rng=8,
        )
        assert fit.slope("distance") == pytest.approx(-0.6, abs=0.07)
        assert abs(fit.slope("noise")) < abs(fit.slope("distance"))

    def test_unknown_feature_name(self):
        graph, positions = _synthetic_graph()
        fit = fit_gravity_model(
            graph, {"distance": pair_distance_feature(positions)}, permutations=0
        )
        with pytest.raises(EstimationError):
            fit.slope("altitude")

    def test_no_features_rejected(self):
        graph, _ = _synthetic_graph()
        with pytest.raises(EstimationError):
            fit_gravity_model(graph, {})

    def test_too_few_pairs_rejected(self):
        weights = np.array([[np.nan, 0.5], [0.5, np.nan]])
        tiny = CategoryGraph(np.array([1.0, 1.0]), weights)
        with pytest.raises(EstimationError, match="usable pairs"):
            fit_gravity_model(
                tiny, {"distance": np.ones((2, 2))}, permutations=0
            )

    def test_nan_features_rejected(self):
        graph, positions = _synthetic_graph()
        positions = positions.copy()
        positions[0] = np.nan
        with pytest.raises(EstimationError, match="non-finite"):
            fit_gravity_model(
                graph,
                {"distance": pair_distance_feature(positions)},
                permutations=0,
            )

    def test_summary(self):
        graph, positions = _synthetic_graph()
        fit = fit_gravity_model(
            graph, {"distance": pair_distance_feature(positions)}, permutations=50
        )
        text = fit.summary()
        assert "distance" in text
        assert "R^2" in text


class TestOnFacebookWorld:
    def test_gravity_on_estimated_country_graph(self):
        """End to end: the Section 9 application on the Section 7 output."""
        from repro.facebook import (
            FacebookModelConfig,
            build_facebook_world,
            estimate_country_graph,
            simulate_crawl_datasets,
        )

        world = build_facebook_world(FacebookModelConfig(scale=12), rng=0)
        datasets = simulate_crawl_datasets(
            world, samples_per_walk=1500, num_walks_2009=4,
            num_walks_2010=2, rng=1,
        )
        estimate = estimate_country_graph(world, datasets)
        first_pos: dict[str, float] = {}
        for r, country in enumerate(world.region_country):
            code = world.country_names[country]
            first_pos.setdefault(code, float(world.region_position[r]))
        positions = np.array(
            [first_pos.get(name, 0.0) for name in estimate.names]
        )
        fit = fit_gravity_model(
            estimate,
            {"distance": pair_distance_feature(positions)},
            permutations=200,
            rng=2,
        )
        # Geography must come out significantly negative.
        assert fit.slope("distance") < 0
        assert fit.p_values[0] < 0.05
