"""Runtime-suite fixtures: the shared-memory leak reaper.

The runtime layer's whole premise is that the *parent* owns every
``/dev/shm`` block it publishes — workers attach untracked, dead
workers cannot leak, and every pool/executor teardown path unlinks what
it created. This fixture enforces that premise at the suite grain:
any ``psm_*`` block that survives the runtime tests (after the default
pools are shut down and abandoned pools garbage-collected) is a
teardown bug, reported as a failure — and reaped, so one leak cannot
poison later suites or fill ``/dev/shm`` across CI runs.
"""

from __future__ import annotations

import gc
from pathlib import Path

import pytest

_SHM_DIR = Path("/dev/shm")


def _shm_blocks() -> set[str]:
    if not _SHM_DIR.is_dir():  # non-Linux: nothing observable to reap
        return set()
    return {path.name for path in _SHM_DIR.glob("psm_*")}


@pytest.fixture(scope="session", autouse=True)
def shared_memory_leak_reaper():
    """Assert the runtime suite unlinks every shared-memory block."""
    before = _shm_blocks()
    yield
    from repro.runtime.pool import reset_default_pools

    reset_default_pools()
    # Abandoned SharedArrayPool instances clean up via __del__; force
    # the collection so a leak report means a real teardown gap, not
    # pending garbage.
    gc.collect()
    leaked = sorted(_shm_blocks() - before)
    for name in leaked:
        try:
            (_SHM_DIR / name).unlink()
        except OSError:
            pass
    assert not leaked, (
        f"runtime suite leaked {len(leaked)} shared-memory block(s) "
        f"(reaped): {leaked}"
    )
