"""Checkpoint/resume: a killed sweep resumes bit-identically.

The scenario the subsystem exists for: a paper-scale run dies after
rung ``k``; re-running with ``resume=True`` must (a) reuse the
persisted samples and completed rungs rather than recomputing them and
(b) finish with output bit-identical to the uninterrupted run — even
with a different worker count.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.generators import planted_category_graph
from repro.runtime.checkpoint import SweepCheckpoint
from repro.sampling import StratifiedWeightedWalkSampler
from repro.stats import run_nrmse_sweep

from tests.runtime.test_executor import assert_sweeps_equal

LADDER = (40, 120, 360)
REPLICATIONS = 6
SEED = 5


@pytest.fixture(scope="module")
def world():
    graph, partition = planted_category_graph(k=6, scale=60, rng=7)
    return graph, partition


@pytest.fixture(scope="module")
def serial(world):
    graph, partition = world
    return run_nrmse_sweep(
        graph,
        partition,
        StratifiedWeightedWalkSampler(graph, partition),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="serial",
    )


def _run(world, root, *, workers=2, resume=False, rng=SEED):
    graph, partition = world
    return run_nrmse_sweep(
        graph,
        partition,
        StratifiedWeightedWalkSampler(graph, partition),
        LADDER,
        replications=REPLICATIONS,
        rng=rng,
        executor="process",
        workers=workers,
        checkpoint=root,
        resume=resume,
    )


def test_checkpointed_run_writes_manifest_samples_and_rung_files(
    world, serial, tmp_path
):
    result = _run(world, tmp_path)
    assert_sweeps_equal(serial, result, "checkpointed run")
    sweep_dir = next(tmp_path.glob("sweep-*"))
    names = sorted(path.name for path in sweep_dir.iterdir())
    assert names == [
        "manifest.json",
        "observations.npz",
        "rung_000.npz",
        "rung_001.npz",
        "rung_002.npz",
        "samples.npz",
        "truth.npz",
    ]
    manifest = json.loads((sweep_dir / "manifest.json").read_text())
    assert manifest["design"] == "swrw"
    assert manifest["sizes"] == list(LADDER)
    assert len(manifest["seeds"]) == REPLICATIONS


def test_killed_after_rung_k_resumes_bit_identically(world, serial, tmp_path):
    _run(world, tmp_path)
    sweep_dir = next(tmp_path.glob("sweep-*"))
    # Simulate a kill after rung 0 completed: later rungs never landed.
    (sweep_dir / "rung_001.npz").unlink()
    (sweep_dir / "rung_002.npz").unlink()
    resumed = _run(world, tmp_path, workers=3, resume=True)
    assert_sweeps_equal(serial, resumed, "resume after rung 0")
    assert (sweep_dir / "rung_002.npz").exists()


def test_resume_really_reads_the_checkpoint(world, serial, tmp_path):
    """Tampered rung rows (with a valid checksum) surface on resume.

    The tamper re-stamps the payload checksum, modeling rows that were
    *computed* differently rather than corrupted on disk — the one case
    the integrity layer must NOT mask, or this test could pass with a
    resume path that silently recomputes everything.
    """
    from repro.runtime.checkpoint import _payload_checksum

    _run(world, tmp_path)
    sweep_dir = next(tmp_path.glob("sweep-*"))
    path = sweep_dir / "rung_000.npz"
    data = dict(np.load(path))
    data.pop("checksum")
    data["sizes_induced"] = data["sizes_induced"] + 1.0
    data["checksum"] = np.asarray(_payload_checksum(data))
    np.savez(path, **data)
    tampered = _run(world, tmp_path, resume=True)
    assert not np.array_equal(
        serial.size_nrmse["induced"],
        tampered.size_nrmse["induced"],
        equal_nan=True,
    ), "resume ignored the persisted rung rows"
    # A fresh (resume=False) run clears the directory and recomputes.
    fresh = _run(world, tmp_path, resume=False)
    assert_sweeps_equal(serial, fresh, "fresh run after tampering")


def test_checksumless_rewrite_is_quarantined_and_recomputed(
    world, serial, tmp_path
):
    """A rung file failing checksum verification degrades, not poisons.

    Rewriting the rung without a checksum models on-disk corruption
    (torn write, bit rot): the resumed run must quarantine the file as
    ``*.corrupt``, recompute the rung, and still match serial exactly.
    """
    _run(world, tmp_path)
    sweep_dir = next(tmp_path.glob("sweep-*"))
    path = sweep_dir / "rung_000.npz"
    data = dict(np.load(path))
    data.pop("checksum")
    data["sizes_induced"] = data["sizes_induced"] + 1.0
    np.savez(path, **data)
    resumed = _run(world, tmp_path, resume=True)
    assert_sweeps_equal(serial, resumed, "resume past quarantined rung")
    assert (sweep_dir / "rung_000.npz.corrupt").exists()
    assert (sweep_dir / "rung_000.npz").exists(), "rung was not rewritten"


def test_different_seeds_use_different_manifest_directories(world, tmp_path):
    _run(world, tmp_path, rng=SEED)
    _run(world, tmp_path, rng=SEED + 1, resume=True)
    assert len(list(tmp_path.glob("sweep-*"))) == 2


def test_checkpoint_rejects_size_mismatched_rungs(tmp_path):
    checkpoint = SweepCheckpoint(tmp_path, {"probe": 1}, resume=False)
    rows = (
        np.ones((2, 3)),
        np.ones((2, 3)),
        np.ones((2, 3, 3)),
        np.ones((2, 3, 3)),
    )
    checkpoint.save_rung(0, size=40, rows=rows)
    assert checkpoint.load_rung(0, size=40) is not None
    assert checkpoint.load_rung(0, size=99) is None
    assert checkpoint.load_rung(1, size=40) is None
    assert checkpoint.completed_rungs([40, 120]) == [0]


def test_fresh_checkpoint_clears_stale_files(tmp_path):
    first = SweepCheckpoint(tmp_path, {"probe": 2}, resume=False)
    first.save_samples(np.zeros((2, 4), dtype=np.int64), np.ones((2, 4)))
    assert first.samples_path.exists()
    reopened = SweepCheckpoint(tmp_path, {"probe": 2}, resume=True)
    assert reopened.load_samples() is not None
    cleared = SweepCheckpoint(tmp_path, {"probe": 2}, resume=False)
    assert cleared.load_samples() is None


def test_resume_skips_the_observation_rebuild(world, serial, tmp_path, monkeypatch):
    """A resumed fresh-draw sweep seeds ladders from observations.npz.

    ``observe_both`` is monkeypatched to explode; fork-context workers
    inherit the patch, so bit-identical resumed output proves the
    per-replicate observation pass never re-ran. The persistent pool
    is reset after patching so the resumed run forks *fresh* workers
    that carry the tripwire (pooled workers pre-date the patch).
    """
    from repro.runtime.pool import reset_default_pools

    _run(world, tmp_path)
    sweep_dir = next(tmp_path.glob("sweep-*"))
    assert (sweep_dir / "observations.npz").exists()
    (sweep_dir / "rung_001.npz").unlink()
    (sweep_dir / "rung_002.npz").unlink()

    import repro.stats.prefix as prefix_module

    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("resume rebuilt observe_both")

    monkeypatch.setattr(prefix_module, "observe_both", explode)
    reset_default_pools()
    try:
        resumed = _run(world, tmp_path, workers=2, resume=True)
    finally:
        reset_default_pools()
    assert_sweeps_equal(serial, resumed, "observation-seeded resume")


def test_observation_round_trip_is_exact(world, tmp_path):
    from repro.runtime.executor import (
        _observation_fields,
        _observations_restore,
    )
    from repro.sampling.observation import observe_both

    graph, partition = world
    sample = StratifiedWeightedWalkSampler(graph, partition).sample(300, rng=1)
    induced, star = observe_both(graph, partition, sample)
    checkpoint = SweepCheckpoint(tmp_path, {"probe": 3}, resume=False)
    checkpoint.save_observations([_observation_fields(induced, star)])
    assert checkpoint.load_observations(expected=2) is None  # count guard
    restored = checkpoint.load_observations(expected=1)
    induced2, star2 = _observations_restore(
        tuple(partition.names), restored[0]
    )
    assert star2.design == star.design and star2.uniform == star.uniform
    assert star2.num_draws == star.num_draws
    for field in (
        "draw_to_distinct",
        "distinct_nodes",
        "distinct_categories",
        "distinct_multiplicities",
        "distinct_weights",
    ):
        before = getattr(star, field)
        after = getattr(star2, field)
        assert before.dtype == after.dtype
        np.testing.assert_array_equal(before, after)
    np.testing.assert_array_equal(induced2.induced_edges, induced.induced_edges)
    for field in (
        "distinct_degrees",
        "neighbor_indptr",
        "neighbor_categories",
        "neighbor_counts",
    ):
        np.testing.assert_array_equal(getattr(star2, field), getattr(star, field))


def test_fully_checkpointed_sweep_replays_without_resampling(
    world, serial, tmp_path
):
    """Resuming a *finished* sweep is a pure replay from the rung files.

    Observable: the early-return path never runs the sampling phase, so
    a deleted samples.npz is not recreated (the old behavior re-walked
    all R replicates just to throw the draws away).
    """
    _run(world, tmp_path)
    sweep_dir = next(tmp_path.glob("sweep-*"))
    (sweep_dir / "samples.npz").unlink()
    replayed = _run(world, tmp_path, resume=True)
    assert_sweeps_equal(serial, replayed, "pure replay")
    assert not (sweep_dir / "samples.npz").exists(), (
        "a fully-checkpointed resume should not resample"
    )
