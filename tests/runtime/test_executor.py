"""Shard-count invariance and error handling of the process executor.

The determinism contract of :mod:`repro.runtime`: a sweep routed
through ``executor="process"`` is **bit-identical** to the serial
engine for any worker count, for every design family — batched frontier
kernels, the alias next-hop, the union-CSR multigraph walk, and the
sequential-fallback designs alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError, SamplingError
from repro.generators import gnm, planted_category_graph
from repro.runtime import ProcessSweepExecutor, runtime_options
from repro.sampling import (
    BreadthFirstSampler,
    ForestFireSampler,
    MultigraphRandomWalkSampler,
    RandomWalkSampler,
    StratifiedWeightedWalkSampler,
    UniformIndependenceSampler,
)
from repro.sampling.base import Sampler
from repro.stats import run_nrmse_sweep

LADDER = (40, 120, 360)
REPLICATIONS = 6
SEED = 1234

DESIGNS = {
    "rw": lambda g, p, rel: RandomWalkSampler(g),
    "swrw-alias": lambda g, p, rel: StratifiedWeightedWalkSampler(
        g, p, next_hop="alias"
    ),
    "multigraph": lambda g, p, rel: MultigraphRandomWalkSampler([g, rel]),
    # no batch kernel: exercises the executor's sequential fallback
    "uis": lambda g, p, rel: UniformIndependenceSampler(g),
    # without-replacement traversal kernels (set-semantics frontier)
    "bfs": lambda g, p, rel: BreadthFirstSampler(g),
    "forest_fire": lambda g, p, rel: ForestFireSampler(g),
}


@pytest.fixture(scope="module")
def world():
    graph, partition = planted_category_graph(k=6, scale=60, rng=7)
    relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=11)
    return graph, partition, relation


@pytest.fixture(scope="module")
def serial_sweeps(world):
    graph, partition, relation = world
    return {
        name: run_nrmse_sweep(
            graph,
            partition,
            factory(graph, partition, relation),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
            executor="serial",
        )
        for name, factory in DESIGNS.items()
    }


def assert_sweeps_equal(a, b, context=""):
    assert np.array_equal(a.sample_sizes, b.sample_sizes)
    for kind in ("induced", "star"):
        for attr in (
            "size_nrmse",
            "weight_nrmse",
            "size_coverage",
            "weight_coverage",
        ):
            assert np.array_equal(
                getattr(a, attr)[kind], getattr(b, attr)[kind], equal_nan=True
            ), f"{context}: {attr}[{kind}] diverged"


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_process_executor_bit_identical_for_any_worker_count(
    name, workers, world, serial_sweeps
):
    graph, partition, relation = world
    parallel = run_nrmse_sweep(
        graph,
        partition,
        DESIGNS[name](graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="process",
        workers=workers,
    )
    assert_sweeps_equal(
        serial_sweeps[name], parallel, f"{name} workers={workers}"
    )


def test_reference_engine_and_ladder_also_shard_exactly(world):
    """The executor is orthogonal to engine/ladder selection."""
    graph, partition, relation = world
    kwargs = dict(
        sample_sizes=LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        engine="sequential",
        ladder="subset",
    )
    serial = run_nrmse_sweep(
        graph, partition, RandomWalkSampler(graph), executor="serial", **kwargs
    )
    parallel = run_nrmse_sweep(
        graph,
        partition,
        RandomWalkSampler(graph),
        executor="process",
        workers=3,
        **kwargs,
    )
    assert_sweeps_equal(serial, parallel, "sequential+subset")


def test_workers_beyond_replications_are_clamped(world, serial_sweeps):
    graph, partition, relation = world
    parallel = run_nrmse_sweep(
        graph,
        partition,
        RandomWalkSampler(graph),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="process",
        workers=REPLICATIONS + 5,
    )
    assert_sweeps_equal(serial_sweeps["rw"], parallel, "over-sharded")


def test_runtime_options_route_sweeps_through_the_executor(
    world, serial_sweeps
):
    graph, partition, relation = world
    with runtime_options(executor="process", workers=2):
        ambient = run_nrmse_sweep(
            graph,
            partition,
            RandomWalkSampler(graph),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
        )
    assert_sweeps_equal(serial_sweeps["rw"], ambient, "ambient options")


def test_environment_routes_sweeps_through_the_executor(
    world, serial_sweeps, monkeypatch
):
    graph, partition, relation = world
    monkeypatch.setenv("REPRO_EXECUTOR", "process")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    from_env = run_nrmse_sweep(
        graph,
        partition,
        RandomWalkSampler(graph),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
    )
    assert_sweeps_equal(serial_sweeps["rw"], from_env, "env routing")


class _ExplodingSampler(Sampler):
    """Fallback-path sampler that fails inside the worker process."""

    @property
    def design(self) -> str:
        return "exploding"

    @property
    def uniform(self) -> bool:
        return True

    def sample(self, n, rng=None):
        raise SamplingError("boom inside the worker")


def test_worker_failures_surface_with_their_traceback(world):
    graph, partition, relation = world
    with pytest.raises(EstimationError, match="boom inside the worker"):
        run_nrmse_sweep(
            graph,
            partition,
            _ExplodingSampler(graph),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
            executor="process",
            workers=2,
        )


def test_invalid_executor_arguments_rejected(world):
    graph, partition, relation = world
    with pytest.raises(EstimationError, match="unknown executor"):
        run_nrmse_sweep(
            graph,
            partition,
            RandomWalkSampler(graph),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
            executor="threads",
        )
    with pytest.raises(EstimationError, match="workers must be >= 1"):
        ProcessSweepExecutor(workers=0)
    with pytest.raises(EstimationError, match="unknown ladder"):
        run_nrmse_sweep(
            graph,
            partition,
            RandomWalkSampler(graph),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
            executor="process",
            workers=1,
            ladder="bogus",
        )


def test_executor_instance_rejects_conflicting_knobs(world):
    graph, partition, relation = world
    with pytest.raises(EstimationError, match="not both"):
        run_nrmse_sweep(
            graph,
            partition,
            RandomWalkSampler(graph),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
            executor=ProcessSweepExecutor(workers=2),
            workers=4,
        )


def test_inner_scope_can_switch_resume_off(monkeypatch):
    from repro.runtime import active_options

    monkeypatch.setenv("REPRO_RESUME", "1")
    assert active_options().resume is True
    with runtime_options(resume=False):
        assert active_options().resume is False
    assert active_options().resume is True


def test_cli_resume_requires_checkpoint(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["run", "fig3a", "--resume"])
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_bare_process_knobs_imply_the_process_executor(world, serial_sweeps):
    """workers=/checkpoint= without executor= must not silently run serial."""
    graph, partition, relation = world
    parallel = run_nrmse_sweep(
        graph,
        partition,
        RandomWalkSampler(graph),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        workers=2,
    )
    assert_sweeps_equal(serial_sweeps["rw"], parallel, "implied process")


def test_sample_streams_rejects_unknown_engines(world):
    from repro.rng import spawn_rngs
    from repro.sampling.batch import sample_streams

    graph, partition, relation = world
    with pytest.raises(SamplingError, match="unknown engine"):
        sample_streams(
            RandomWalkSampler(graph), 10, spawn_rngs(0, 2), engine="Batched"
        )


def test_malformed_workers_env_names_the_variable(monkeypatch):
    from repro.runtime.config import active_options

    monkeypatch.setenv("REPRO_WORKERS", "two")
    with pytest.raises(EstimationError, match="REPRO_WORKERS"):
        active_options()


@pytest.mark.parametrize("value", ["0", "-2"])
def test_non_positive_workers_env_rejected(monkeypatch, value):
    """REPRO_WORKERS=0/-2 must raise, not be silently accepted."""
    from repro.runtime.config import active_options

    monkeypatch.setenv("REPRO_WORKERS", value)
    with pytest.raises(EstimationError, match="REPRO_WORKERS must be >= 1"):
        active_options()
