"""Fault tolerance: every injected failure recovers to the same bytes.

The acceptance bar of the fault-tolerant runtime: a worker SIGKILLed
mid-rung, a task that hangs past its heartbeat deadline, a worker pool
that cannot (re)spawn, and a checkpoint file corrupted on disk must all
degrade — never crash — and the recovered run's output must be
byte-identical to an undisturbed serial run. Failures are *scheduled
inputs* here (:mod:`repro.runtime.faults`), so every recovery path runs
deterministically on every push.
"""

from __future__ import annotations

import os
import queue

import pytest

from repro.exceptions import EstimationError
from repro.generators import planted_category_graph
from repro.runtime import faults, runtime_options
from repro.runtime.executor import ProcessSweepExecutor
from repro.runtime.faults import FaultPlan, parse_faults
from repro.runtime.pool import (
    WorkerFailure,
    default_pool,
    read_spill,
    reset_default_pools,
)
from repro.sampling import StratifiedWeightedWalkSampler
from repro.stats import run_nrmse_sweep

from tests.runtime.test_executor import assert_sweeps_equal

LADDER = (40, 120, 360)
REPLICATIONS = 6
SEED = 99


@pytest.fixture(scope="module")
def world():
    graph, partition = planted_category_graph(k=6, scale=60, rng=7)
    return graph, partition


@pytest.fixture(scope="module")
def serial(world):
    graph, partition = world
    return run_nrmse_sweep(
        graph,
        partition,
        StratifiedWeightedWalkSampler(graph, partition),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="serial",
    )


def _sweep(world, executor):
    graph, partition = world
    return run_nrmse_sweep(
        graph,
        partition,
        StratifiedWeightedWalkSampler(graph, partition),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor=executor,
    )


# ----------------------------------------------------------------------
# Fault spec grammar
# ----------------------------------------------------------------------
def test_parse_faults_grammar():
    plan = parse_faults("kill-worker:rung=1,shard=0,times=2; hang-worker")
    assert [fault.kind for fault in plan] == ["kill-worker", "hang-worker"]
    assert plan[0].params == {"rung": 1, "shard": 0}
    assert plan[0].times == 2
    assert plan[1].params == {} and plan[1].times == 1


def test_parse_faults_rejects_unknown_kind():
    with pytest.raises(EstimationError, match="unknown fault kind"):
        parse_faults("explode-kernel")


def test_parse_faults_rejects_malformed_parameter():
    with pytest.raises(EstimationError, match="key=value"):
        parse_faults("kill-worker:rung")


def test_parse_faults_rejects_nonpositive_times():
    with pytest.raises(EstimationError, match="times"):
        parse_faults("kill-worker:times=0")


def test_fault_budgets_are_consumed_at_issue_time():
    plan = FaultPlan.parse("kill-worker:shard=1,times=2")
    assert plan.take("kill-worker", shard=0) is None  # wrong shard
    assert plan.take("kill-worker", shard=1) is not None
    assert plan.pending("kill-worker") == 1
    assert plan.take("kill-worker", shard=1) is not None
    assert plan.take("kill-worker", shard=1) is None  # budget drained


def test_env_faults_only_arm_inside_runtime_scopes(monkeypatch):
    """REPRO_FAULTS must not strike direct (non-runtime) checkpoint use."""
    monkeypatch.setenv(
        "REPRO_FAULTS", "corrupt-checkpoint:file=test-probe,times=1"
    )
    assert faults.take("corrupt-checkpoint", file="test-probe") is None
    with faults.env_scope():
        assert faults.take("corrupt-checkpoint", file="test-probe") is not None
        assert faults.take("corrupt-checkpoint", file="test-probe") is None


# ----------------------------------------------------------------------
# Shard failover: mid-rung worker death
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 3])
def test_mid_rung_worker_kill_recovers_bit_identically(workers, world, serial):
    executor = ProcessSweepExecutor(workers=workers)
    with faults.inject("kill-worker:rung=1,shard=0"):
        result = _sweep(world, executor)
    assert_sweeps_equal(serial, result, f"kill recovery workers={workers}")
    assert executor.failover_log, "the injected kill never triggered failover"
    entry = executor.failover_log[0]
    assert entry["slot"] == 0
    assert entry["pid"] is not None
    assert not entry["timeout"]


@pytest.mark.parametrize("name", ["bfs", "forest_fire"])
def test_mid_traversal_worker_kill_recovers_bit_identically(name, world):
    """A worker killed while running a traversal frontier kernel.

    ``phase=sample`` strikes after the batched BFS / Forest Fire kernel
    drew its shard's replicates but before the ``sampled`` reply — the
    visited bitmaps and outputs die with the process, and the
    replacement task must redraw the same replicates from the original
    seeds. Recovery must be byte-identical to an undisturbed serial
    run.
    """
    from repro.sampling import BreadthFirstSampler, ForestFireSampler

    graph, partition = world
    factory = {
        "bfs": lambda: BreadthFirstSampler(graph),
        "forest_fire": lambda: ForestFireSampler(graph),
    }[name]
    kwargs = dict(replications=REPLICATIONS, rng=SEED)
    undisturbed = run_nrmse_sweep(
        graph, partition, factory(), LADDER, executor="serial", **kwargs
    )
    executor = ProcessSweepExecutor(workers=2)
    with faults.inject("kill-worker:phase=sample,shard=0"):
        result = run_nrmse_sweep(
            graph, partition, factory(), LADDER, executor=executor, **kwargs
        )
    assert_sweeps_equal(undisturbed, result, f"mid-traversal kill [{name}]")
    assert executor.failover_log, "the injected kill never triggered failover"
    entry = executor.failover_log[0]
    assert entry["slot"] == 0
    assert entry["phase"] == "sampled", entry
    assert not entry["timeout"]


def test_phase_sample_spec_yields_the_sample_kill_directive():
    with faults.inject("kill-worker:phase=sample,shard=2"):
        assert faults.take_worker_directives(0) == ()
        assert faults.take_worker_directives(2) == (("kill", "sample"),)
        assert faults.take_worker_directives(2) == ()  # budget drained


def test_hung_worker_times_out_and_fails_over(world, serial):
    executor = ProcessSweepExecutor(workers=2, task_timeout=0.75)
    with faults.inject("hang-worker:shard=0"):
        result = _sweep(world, executor)
    assert_sweeps_equal(serial, result, "hang recovery")
    assert any(entry["timeout"] for entry in executor.failover_log), (
        "the hang was not classified as a heartbeat timeout"
    )


def test_retry_exhaustion_raises_structured_worker_failure(world):
    executor = ProcessSweepExecutor(workers=2, max_retries=1)
    with faults.inject("kill-worker:rung=0,shard=0,times=10"):
        with pytest.raises(WorkerFailure) as excinfo:
            _sweep(world, executor)
    failure = excinfo.value
    assert failure.slot == 0
    assert len(failure.retries) == 2  # the first attempt plus one retry
    message = str(failure)
    assert "shard 0" in message
    assert "pid" in message and "exitcode" in message
    assert "replicates" in message


# ----------------------------------------------------------------------
# Graceful degradation: spawn failures
# ----------------------------------------------------------------------
def test_spawn_failure_degrades_to_in_process_serial(world, serial):
    reset_default_pools()
    executor = ProcessSweepExecutor(workers=2)
    try:
        with faults.inject("fail-respawn:times=8"):
            with pytest.warns(RuntimeWarning, match="in-process serial"):
                result = _sweep(world, executor)
    finally:
        reset_default_pools()
    assert_sweeps_equal(serial, result, "in-process serial degradation")


def test_spawn_failure_with_a_survivor_multiplexes_shards(world, serial):
    reset_default_pools()
    pool = default_pool()
    pool.ensure(1)  # the lone survivor, spawned before faults arm
    executor = ProcessSweepExecutor(workers=3)
    try:
        with faults.inject("fail-respawn:times=8"):
            with pytest.warns(RuntimeWarning, match="multiplexing"):
                result = _sweep(world, executor)
    finally:
        reset_default_pools()
    assert_sweeps_equal(serial, result, "fewer-workers degradation")


# ----------------------------------------------------------------------
# Failover inside a DAG plan run
# ----------------------------------------------------------------------
def test_mid_plan_worker_kill_is_byte_identical():
    from repro.experiments import run_experiment
    from tests.experiments.test_experiments import TINY
    from tests.runtime.test_plan import assert_results_equal

    serial_result = run_experiment("fig6", preset=TINY, rng=0)
    with faults.inject("kill-worker:rung=0"), runtime_options(
        executor="process", workers=2, plan_scheduler="dag"
    ):
        chaotic = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(serial_result, chaotic, "fig6 with mid-rung kill")


# ----------------------------------------------------------------------
# Checkpoint corruption: quarantine and recompute
# ----------------------------------------------------------------------
def test_corrupted_rung_write_is_quarantined_on_resume(world, serial, tmp_path):
    with faults.inject("corrupt-checkpoint:file=rung,times=1"):
        first = _sweep(
            world, ProcessSweepExecutor(workers=2, checkpoint=tmp_path)
        )
    assert_sweeps_equal(serial, first, "run with a corrupted rung write")
    resumed = _sweep(
        world,
        ProcessSweepExecutor(workers=2, checkpoint=tmp_path, resume=True),
    )
    assert_sweeps_equal(serial, resumed, "resume past injected corruption")
    sweep_dir = next(tmp_path.glob("sweep-*"))
    assert list(sweep_dir.glob("*.corrupt")), (
        "the truncated rung file was not quarantined"
    )


def test_corrupt_observations_fall_back_to_recomputing(world, serial, tmp_path):
    _sweep(world, ProcessSweepExecutor(workers=2, checkpoint=tmp_path))
    sweep_dir = next(tmp_path.glob("sweep-*"))
    (sweep_dir / "rung_001.npz").unlink()
    (sweep_dir / "rung_002.npz").unlink()
    path = sweep_dir / "observations.npz"
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # torn write
    resumed = _sweep(
        world,
        ProcessSweepExecutor(workers=2, checkpoint=tmp_path, resume=True),
    )
    assert_sweeps_equal(serial, resumed, "resume past corrupt observations")
    assert (sweep_dir / "observations.npz.corrupt").exists()
    assert (sweep_dir / "observations.npz").exists(), (
        "the observations were not re-persisted after quarantine"
    )


# ----------------------------------------------------------------------
# The silent-failure window: spill files
# ----------------------------------------------------------------------
def test_worker_spills_its_traceback_when_the_reply_pipe_breaks():
    from repro.runtime.pool import _task_main

    def broken_reply(*parts):
        raise BrokenPipeError("parent is gone")

    # An unpicklable payload makes serve_shard raise immediately; the
    # broken reply models the parent tearing down mid-error. The
    # traceback must survive via the spill file.
    _task_main(7, b"not a pickle", {}, queue.SimpleQueue(), broken_reply)
    spill = read_spill(os.getpid())
    assert spill is not None and "Traceback" in spill
    assert read_spill(os.getpid()) is None  # reading clears the spill


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
def test_env_knobs_reach_the_executor(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
    executor = ProcessSweepExecutor(workers=1)
    assert executor.max_retries == 4
    assert executor.task_timeout == 2.5
    monkeypatch.setenv("REPRO_MAX_RETRIES", "nope")
    with pytest.raises(EstimationError, match="REPRO_MAX_RETRIES"):
        ProcessSweepExecutor(workers=1)


def test_cli_flags_install_ambient_fault_knobs(monkeypatch):
    from repro.cli import _runtime_scope, build_parser
    from repro.runtime import active_options

    # Isolate from ambient runtime env (the chaos CI job exports
    # REPRO_EXECUTOR=process, which would mask the executor check).
    for name in (
        "REPRO_EXECUTOR",
        "REPRO_WORKERS",
        "REPRO_MAX_RETRIES",
        "REPRO_TASK_TIMEOUT",
    ):
        monkeypatch.delenv(name, raising=False)

    parser = build_parser()
    args = parser.parse_args(
        ["run", "fig6", "--max-retries", "5", "--task-timeout", "30"]
    )
    with _runtime_scope(args):
        options = active_options()
        assert options.max_retries == 5
        assert options.task_timeout == 30.0
        # Tuning knobs alone must not force the process executor.
        assert options.executor is None


def test_negative_max_retries_is_rejected():
    with pytest.raises(EstimationError, match="max_retries"):
        ProcessSweepExecutor(workers=1, max_retries=-1)
