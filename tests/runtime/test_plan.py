"""Plan-level golden equivalence and kill/resume behavior.

The acceptance bar of the SweepPlan refactor: every experiment runs
through a compiled plan, serial and ``--workers N`` outputs are
bit-identical for any worker count — including the *pre-drawn* paths
(fig6's crawl sweeps, the ablation plug-in study) that used to reduce
serially — and a killed checkpointed plan resumes to the same bytes at
the first missing cell/rung.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import compile_experiment, run_experiment
from repro.experiments.plan import (
    ComputeCell,
    PlanResources,
    SweepCell,
    SweepJob,
    SweepPlan,
)
from repro.exceptions import ExperimentError
from repro.runtime import runtime_options
from repro.runtime.plan import run_plan

from tests.experiments.test_experiments import TINY


def assert_results_equal(expected, actual, context=""):
    """Bit-level equality of two ``{id: ExperimentResult}`` dicts."""
    assert list(expected) == list(actual), context
    for rid in expected:
        old, new = expected[rid], actual[rid]
        assert old.title == new.title, (context, rid)
        assert list(old.series) == list(new.series), (context, rid)
        for label, (xs, ys) in old.series.items():
            assert np.array_equal(
                np.asarray(xs), np.asarray(new.series[label][0]), equal_nan=True
            ), (context, rid, label)
            assert np.array_equal(
                np.asarray(ys), np.asarray(new.series[label][1]), equal_nan=True
            ), (context, rid, label)
        assert old.table == new.table, (context, rid)
        assert old.render() == new.render(), (context, rid)


@pytest.fixture(scope="module")
def fig6_serial():
    return run_experiment("fig6", preset=TINY, rng=0)


@pytest.fixture(scope="module")
def plugin_serial():
    from repro.experiments import run_ablations

    return run_ablations(which=("plugin",), preset=TINY, rng=0)


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_fig6_predrawn_cells_bit_identical_for_any_worker_count(
    workers, fig6_serial
):
    with runtime_options(executor="process", workers=workers):
        parallel = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(fig6_serial, parallel, f"fig6 workers={workers}")


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_ablation_plugin_bit_identical_for_any_worker_count(
    workers, plugin_serial
):
    from repro.experiments import run_ablations

    with runtime_options(executor="process", workers=workers):
        parallel = run_ablations(which=("plugin",), preset=TINY, rng=0)
    assert_results_equal(plugin_serial, parallel, f"plugin workers={workers}")


def test_killed_fig6_plan_resumes_to_the_same_bytes(fig6_serial, tmp_path):
    """A parallel fig6 run killed mid-cell resumes bit-identically.

    The kill is simulated by pruning the checkpoint to a prefix state a
    real kill produces (rung files land atomically, one per completed
    rung): cell 1 complete, cell 2 stopped after its first rung, later
    cells never started.
    """
    with runtime_options(
        executor="process", workers=2, checkpoint=tmp_path
    ):
        first = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(fig6_serial, first, "checkpointed run")
    plan_dir = next(tmp_path.glob("plan-*"))
    cell_dirs = sorted(d for d in plan_dir.iterdir() if d.is_dir())
    assert len(cell_dirs) == 5, "one sweep-checkpoint root per fig6 cell"
    # Prune to the mid-cell kill state.
    survivors = {cell_dirs[0].name}
    for cell_dir in cell_dirs[1:]:
        sweep_dir = next(cell_dir.glob("sweep-*"))
        if cell_dir == cell_dirs[1]:
            for rung in sorted(sweep_dir.glob("rung_*.npz"))[1:]:
                rung.unlink()
            survivors.add(cell_dir.name)
        else:
            import shutil

            shutil.rmtree(cell_dir)
    assert {d.name for d in plan_dir.iterdir() if d.is_dir()} == survivors

    with runtime_options(
        executor="process", workers=3, checkpoint=tmp_path, resume=True
    ):
        resumed = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(fig6_serial, resumed, "resumed after mid-cell kill")
    # The resumed run completed every cell's checkpoint again.
    assert len([d for d in plan_dir.iterdir() if d.is_dir()]) == 5


def test_plan_resume_reuses_persisted_observations(tmp_path, monkeypatch):
    """Resume must seed ladders from observations.npz, not re-measure.

    With the fork start method the workers inherit the parent's
    monkeypatched modules, so making ``observe_both`` explode proves
    the resumed ladder build never calls it. The persistent worker
    pool is reset *after* patching — pooled workers forked by earlier
    sweeps would otherwise pre-date the patch and defuse the tripwire.
    """
    from repro.experiments import run_ablations
    from repro.runtime.pool import reset_default_pools

    with runtime_options(executor="process", workers=2, checkpoint=tmp_path):
        first = run_ablations(which=("plugin",), preset=TINY, rng=0)
    plan_dir = next(tmp_path.glob("plan-*"))
    pruned = 0
    for sweep_dir in plan_dir.glob("*/sweep-*"):
        assert (sweep_dir / "observations.npz").exists()
        for rung in sweep_dir.glob("rung_*.npz"):
            rung.unlink()
            pruned += 1
    assert pruned, "expected checkpointed rungs to prune"

    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("resume re-measured a replicate sample")

    import repro.stats.prefix as prefix_module

    monkeypatch.setattr(prefix_module, "observe_both", explode)
    reset_default_pools()
    try:
        with runtime_options(
            executor="process", workers=2, checkpoint=tmp_path, resume=True
        ):
            resumed = run_ablations(which=("plugin",), preset=TINY, rng=0)
    finally:
        # The patched module is baked into the fresh workers; retire
        # them so later tests fork clean ones.
        reset_default_pools()
    assert_results_equal(first, resumed, "observation-seeded resume")


def test_compile_experiment_exposes_every_registry_entry():
    from repro.experiments import experiment_ids

    for experiment_id in experiment_ids():
        plan = compile_experiment(experiment_id, preset=TINY, rng=0)
        assert plan.cells, experiment_id
        description = plan.describe()
        for cell in plan.cells:
            assert cell.key in description
    with pytest.raises(ExperimentError, match="unknown experiment"):
        compile_experiment("fig99")


def test_every_replicated_experiment_has_sweep_cells():
    """The paper's replicated artifacts must ride the sweep executor."""
    expected_sweeps = {
        "fig3": 5,       # five shared graph configurations
        "fig4": 12,      # four datasets x three designs
        "fig6": 5,       # five pre-drawn crawl collections
        "ablations": 3,  # three Eq. (16) plug-in variants
    }
    for experiment_id, count in expected_sweeps.items():
        plan = compile_experiment(experiment_id, preset=TINY, rng=0)
        assert len(plan.sweep_cells) == count, experiment_id


def test_serial_run_never_touches_a_parallel_plan_checkpoint(tmp_path):
    """A serial run with a checkpoint root configured must not clear a
    prior parallel run's plan directory (serial cells ignore
    checkpoints, so clearing would destroy data and write nothing)."""
    from repro.experiments import run_ablations

    with runtime_options(executor="process", workers=2, checkpoint=tmp_path):
        run_ablations(which=("plugin",), preset=TINY, rng=0)
    plan_dir = next(tmp_path.glob("plan-*"))
    rungs_before = sorted(plan_dir.glob("*/sweep-*/rung_*.npz"))
    assert rungs_before

    with runtime_options(executor="serial", checkpoint=tmp_path):
        run_ablations(which=("plugin",), preset=TINY, rng=0)
    assert sorted(plan_dir.glob("*/sweep-*/rung_*.npz")) == rungs_before


def test_plans_with_different_context_use_different_directories(tmp_path):
    """Scale/seed are part of the plan key: runs never share (or clear)
    each other's checkpoint directories."""
    from repro.experiments import run_ablations

    for seed in (0, 1):
        with runtime_options(
            executor="process", workers=2, checkpoint=tmp_path
        ):
            run_ablations(which=("plugin",), preset=TINY, rng=seed)
    plan_dirs = sorted(tmp_path.glob("plan-*"))
    assert len(plan_dirs) == 2
    # The seed-0 artifacts survived the fresh (non-resume) seed-1 run.
    for plan_dir in plan_dirs:
        assert list(plan_dir.glob("*/sweep-*/rung_000.npz"))


def test_fresh_sweep_jobs_reject_cross_sample_truth():
    from repro.generators import planted_category_graph
    from repro.sampling import RandomWalkSampler

    graph, partition = planted_category_graph(k=4, scale=200, rng=0)
    with pytest.raises(ExperimentError, match="pre-drawn knob"):
        SweepJob(
            graph=graph,
            partition=partition,
            sizes=(10,),
            sampler=RandomWalkSampler(graph),
            replications=2,
            rng=0,
            truth_mode="cross-sample",
        )


def test_fresh_sweep_jobs_require_a_seed():
    from repro.generators import planted_category_graph
    from repro.sampling import RandomWalkSampler

    graph, partition = planted_category_graph(k=4, scale=200, rng=0)
    with pytest.raises(ExperimentError, match="need rng="):
        SweepJob(
            graph=graph,
            partition=partition,
            sizes=(10,),
            sampler=RandomWalkSampler(graph),
            replications=2,
        )


def test_duplicate_cell_keys_rejected():
    def build(resources):  # pragma: no cover - never built
        raise AssertionError

    with pytest.raises(ExperimentError, match="duplicate cell keys"):
        SweepPlan(
            name="bad",
            cells=(
                SweepCell(key="x", build=build),
                ComputeCell(key="x", compute=lambda resources: None),
            ),
            finalize=lambda outputs, resources: {},
        )


def test_sweep_job_validates_its_mode():
    from repro.generators import planted_category_graph
    from repro.sampling import RandomWalkSampler

    graph, partition = planted_category_graph(k=4, scale=200, rng=0)
    with pytest.raises(ExperimentError, match="exactly one"):
        SweepJob(graph=graph, partition=partition, sizes=(10,))
    with pytest.raises(ExperimentError, match="replications"):
        SweepJob(
            graph=graph,
            partition=partition,
            sizes=(10,),
            sampler=RandomWalkSampler(graph),
        )


def test_unknown_plan_resource_is_a_clear_error():
    resources = PlanResources({"known": lambda: 1})
    assert resources["known"] == 1
    assert "known" in resources
    with pytest.raises(ExperimentError, match="unknown plan resource"):
        resources["missing"]


def test_run_plan_rejects_executor_instances():
    from repro.runtime import ProcessSweepExecutor

    plan = SweepPlan(
        name="probe",
        cells=(ComputeCell(key="only", compute=lambda resources: 1),),
    )
    with pytest.raises(ExperimentError, match="executor names"):
        run_plan(plan, executor=ProcessSweepExecutor(workers=1))


def test_plan_runner_runs_compute_cells_in_process():
    seen = []

    def compute(resources):
        seen.append(resources["token"])
        return "payload"

    plan = SweepPlan(
        name="probe",
        cells=(ComputeCell(key="only", compute=compute),),
        finalize=lambda outputs, resources: dict(outputs),
        resources={"token": lambda: 41 + 1},
    )
    outputs = run_plan(plan)
    assert outputs == {"only": "payload"}
    assert seen == [42]
