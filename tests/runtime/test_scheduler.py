"""DAG plan scheduler: bit-equality, kill/resume, substrate-free replay.

The acceptance bar of the scheduler refactor: a plan executed as a DAG
— resources building concurrently, independent cells overlapping on the
persistent worker pool — produces **byte-identical** output to the
serial cell loop for any worker count and any in-flight bound; a plan
killed with several cells in flight resumes to the same bytes; and a
fully rung-cached cell resumes without its substrate ever being built.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import EstimationError, ExperimentError
from repro.experiments import run_experiment
from repro.experiments.plan import (
    PlanResources,
    SweepCell,
    SweepJob,
    SweepPlan,
)
from repro.generators import planted_category_graph
from repro.runtime import runtime_options
from repro.runtime.config import resolve_plan_scheduler
from repro.runtime.plan import run_plan
from repro.runtime.pool import default_pool, reset_default_pools
from repro.sampling import RandomWalkSampler
from repro.stats import run_nrmse_sweep

from tests.experiments.test_experiments import TINY
from tests.runtime.test_executor import assert_sweeps_equal
from tests.runtime.test_plan import assert_results_equal


@pytest.fixture(scope="module")
def fig6_serial():
    return run_experiment("fig6", preset=TINY, rng=0)


@pytest.fixture(scope="module")
def fig4_serial():
    return run_experiment("fig4", preset=TINY, rng=0)


# ----------------------------------------------------------------------
# Bit-equality: DAG schedule vs serial loop vs serial executor
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 3])
def test_fig6_dag_bit_identical_for_any_worker_count(workers, fig6_serial):
    with runtime_options(
        executor="process", workers=workers, plan_scheduler="dag"
    ):
        dag = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(fig6_serial, dag, f"fig6 dag workers={workers}")


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_fig4_dag_bit_identical_for_any_worker_count(workers, fig4_serial):
    with runtime_options(
        executor="process", workers=workers, plan_scheduler="dag"
    ):
        dag = run_experiment("fig4", preset=TINY, rng=0)
    assert_results_equal(fig4_serial, dag, f"fig4 dag workers={workers}")


@pytest.mark.parametrize("experiment", ["fig4", "fig6"])
def test_dag_matches_serial_loop_under_the_process_executor(
    experiment, fig4_serial, fig6_serial
):
    """Same executor, different schedules: the loop is the DAG's twin."""
    with runtime_options(
        executor="process", workers=2, plan_scheduler="serial"
    ):
        loop = run_experiment(experiment, preset=TINY, rng=0)
    with runtime_options(executor="process", workers=2, plan_scheduler="dag"):
        dag = run_experiment(experiment, preset=TINY, rng=0)
    assert_results_equal(loop, dag, f"{experiment} loop-vs-dag")
    baseline = fig4_serial if experiment == "fig4" else fig6_serial
    assert_results_equal(baseline, dag, f"{experiment} serial-vs-dag")


@pytest.mark.parametrize(
    "experiment", ["fig3", "fig5", "fig7", "table1", "table2", "ablations"]
)
def test_every_other_experiment_is_dag_bit_identical_too(experiment):
    """The acceptance bar covers the whole registry, not just the two
    DAG-widest plans (fig4/fig6 get the 1/2/3-worker treatment above)."""
    serial = run_experiment(experiment, preset=TINY, rng=0)
    with runtime_options(executor="process", workers=2, plan_scheduler="dag"):
        dag = run_experiment(experiment, preset=TINY, rng=0)
    assert_results_equal(serial, dag, f"{experiment} serial-vs-dag")


@pytest.mark.parametrize("inflight", ["1", "3"])
def test_inflight_bound_never_touches_the_bytes(
    inflight, fig6_serial, monkeypatch
):
    monkeypatch.setenv("REPRO_PLAN_INFLIGHT", inflight)
    with runtime_options(executor="process", workers=2):
        dag = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(fig6_serial, dag, f"fig6 inflight={inflight}")


def test_malformed_inflight_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_INFLIGHT", "two")
    with pytest.raises(EstimationError, match="REPRO_PLAN_INFLIGHT"):
        with runtime_options(executor="process", workers=2):
            run_experiment("fig6", preset=TINY, rng=0)


# ----------------------------------------------------------------------
# Kill/resume with cells in flight
# ----------------------------------------------------------------------
def test_mid_plan_kill_with_two_cells_in_flight_resumes_to_same_bytes(
    fig6_serial, tmp_path, monkeypatch
):
    """Two cells die mid-ladder (the in-flight pair), later cells never
    started; ``--resume`` must finish the plan to the same bytes.

    The kill is simulated by pruning the checkpoint to exactly the
    state a kill with ``REPRO_PLAN_INFLIGHT=2`` produces: one cell
    complete, the two in-flight cells each missing their later rungs,
    the rest absent — and ``cells.json`` still claiming the pruned
    cells, which replay must detect as incomplete and recompute.
    """
    monkeypatch.setenv("REPRO_PLAN_INFLIGHT", "2")
    with runtime_options(executor="process", workers=2, checkpoint=tmp_path):
        first = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(fig6_serial, first, "checkpointed DAG run")
    plan_dir = next(tmp_path.glob("plan-*"))
    cell_dirs = sorted(d for d in plan_dir.iterdir() if d.is_dir())
    assert len(cell_dirs) == 5
    import shutil

    for index, cell_dir in enumerate(cell_dirs):
        if index == 0:
            continue  # completed before the kill
        elif index in (1, 2):  # the in-flight pair: first rung landed
            sweep_dir = next(cell_dir.glob("sweep-*"))
            for rung in sorted(sweep_dir.glob("rung_*.npz"))[1:]:
                rung.unlink()
        else:  # never started
            shutil.rmtree(cell_dir)

    with runtime_options(
        executor="process", workers=3, checkpoint=tmp_path, resume=True
    ):
        resumed = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(fig6_serial, resumed, "resume after mid-plan kill")
    assert len([d for d in plan_dir.iterdir() if d.is_dir()]) == 5


# ----------------------------------------------------------------------
# Substrate-free replay of recorded cells
# ----------------------------------------------------------------------
def _probe_plan(calls: dict):
    """One fresh-draw sweep cell over one counted resource."""

    def factory():
        calls["resource"] += 1
        return planted_category_graph(k=4, scale=120, rng=3)

    def build(resources: PlanResources) -> SweepJob:
        calls["build"] += 1
        graph, partition = resources["sub"]
        return SweepJob(
            graph=graph,
            partition=partition,
            sizes=(30, 90),
            sampler=RandomWalkSampler(graph),
            replications=3,
            rng=7,
        )

    return SweepPlan(
        name="probe-replay",
        cells=(SweepCell(key="only", build=build, needs=("sub",)),),
        resources={"sub": factory},
        context={"seed": 7},
    )


def test_fully_cached_cell_resumes_without_rebuilding_its_substrate(tmp_path):
    calls = {"resource": 0, "build": 0}
    first = run_plan(
        _probe_plan(calls), executor="process", workers=2, checkpoint=tmp_path
    )
    assert calls == {"resource": 1, "build": 1}

    plan_dir = next(tmp_path.glob("plan-*"))
    recorded = json.loads((plan_dir / "cells.json").read_text())
    assert set(recorded) == {"only"}

    replay_calls = {"resource": 0, "build": 0}
    replayed = run_plan(
        _probe_plan(replay_calls),
        executor="process",
        workers=2,
        checkpoint=tmp_path,
        resume=True,
    )
    # The whole point: neither the resource nor the cell substrate was
    # ever constructed — the result came from cells.json + truth.npz +
    # the rung files alone.
    assert replay_calls == {"resource": 0, "build": 0}
    assert_sweeps_equal(first["only"], replayed["only"], "substrate-free replay")

    # A pruned rung invalidates the recorded key's replay: the cell
    # falls back to the build-and-resume path (and the bytes still
    # match).
    sweep_dir = next((plan_dir / "only").glob("sweep-*"))
    sorted(sweep_dir.glob("rung_*.npz"))[-1].unlink()
    fallback_calls = {"resource": 0, "build": 0}
    fallback = run_plan(
        _probe_plan(fallback_calls),
        executor="process",
        workers=2,
        checkpoint=tmp_path,
        resume=True,
    )
    assert fallback_calls == {"resource": 1, "build": 1}
    assert_sweeps_equal(first["only"], fallback["only"], "post-tamper resume")


def test_recorded_cells_survive_for_every_sweep_cell(tmp_path):
    with runtime_options(executor="process", workers=2, checkpoint=tmp_path):
        run_experiment("fig6", preset=TINY, rng=0)
    plan_dir = next(tmp_path.glob("plan-*"))
    recorded = json.loads((plan_dir / "cells.json").read_text())
    assert set(recorded) == {"MHRW09", "RW09", "UIS09", "RW10", "S-WRW10"}
    for cell_key, sweep_key in recorded.items():
        assert (plan_dir / cell_key / f"sweep-{sweep_key}").is_dir()


# ----------------------------------------------------------------------
# The persistent pool
# ----------------------------------------------------------------------
def test_persistent_pool_reuses_workers_across_sweeps():
    graph, partition = planted_category_graph(k=4, scale=120, rng=5)
    reset_default_pools()

    def sweep():
        return run_nrmse_sweep(
            graph,
            partition,
            RandomWalkSampler(graph),
            (30, 90),
            replications=4,
            rng=11,
            executor="process",
            workers=2,
        )

    first = sweep()
    pids = default_pool().worker_pids()
    assert len(pids) >= 2
    second = sweep()
    assert default_pool().worker_pids() == pids, (
        "a second sweep must reuse the live workers, not respawn"
    )
    assert_sweeps_equal(first, second, "pooled back-to-back sweeps")


def test_plan_resource_blocks_are_retired_from_persistent_workers():
    """A finished plan must not leak its resource arrays into workers.

    Cell-local blocks are retired per cell; the plan's *ambient*
    resource blocks are retired when the plan ends. Without that, every
    plan run pins one dead copy of its substrate in each persistent
    worker for the process lifetime (observable on Linux as unlinked
    ``psm_*`` mappings in ``/proc/<pid>/maps``).
    """
    import pathlib
    import time

    if not pathlib.Path("/proc").exists():  # pragma: no cover - non-Linux
        pytest.skip("needs /proc to observe worker mappings")
    with runtime_options(executor="process", workers=2):
        run_experiment("fig6", preset=TINY, rng=0)
    deadline = time.monotonic() + 10.0
    while True:  # retire messages drain asynchronously
        pinned = {
            pid: sum(
                1
                for line in pathlib.Path(f"/proc/{pid}/maps")
                .read_text()
                .splitlines()
                if "psm_" in line and "(deleted)" in line
            )
            for pid in default_pool().worker_pids()
        }
        if not any(pinned.values()) or time.monotonic() > deadline:
            break
        time.sleep(0.1)
    assert not any(pinned.values()), pinned


def test_worker_failures_leave_the_pool_usable():
    """A task error surfaces as EstimationError without killing workers."""
    from tests.runtime.test_executor import _ExplodingSampler

    graph, partition = planted_category_graph(k=4, scale=120, rng=5)
    run_nrmse_sweep(
        graph,
        partition,
        RandomWalkSampler(graph),
        (30, 90),
        replications=4,
        rng=11,
        executor="process",
        workers=2,
    )
    pids = default_pool().worker_pids()
    with pytest.raises(EstimationError, match="boom inside the worker"):
        run_nrmse_sweep(
            graph,
            partition,
            _ExplodingSampler(graph),
            (30, 90),
            replications=4,
            rng=11,
            executor="process",
            workers=2,
        )
    assert default_pool().worker_pids() == pids, (
        "task errors must not take down the persistent workers"
    )


# ----------------------------------------------------------------------
# Declared dependencies and thread-safe resources
# ----------------------------------------------------------------------
def test_undeclared_needs_rejected_at_compile_time():
    def build(resources):  # pragma: no cover - never built
        raise AssertionError

    with pytest.raises(ExperimentError, match="undeclared resources"):
        SweepPlan(
            name="bad",
            cells=(SweepCell(key="x", build=build, needs=("nope",)),),
        )
    with pytest.raises(ExperimentError, match="finalize needs undeclared"):
        SweepPlan(
            name="bad",
            cells=(),
            finalize_needs=("nope",),
        )


def test_plan_resources_build_once_under_concurrency():
    builds = []

    def factory():
        builds.append(1)
        return object()

    resources = PlanResources({"x": factory})
    with ThreadPoolExecutor(max_workers=8) as threads:
        values = list(threads.map(lambda _: resources["x"], range(16)))
    assert len(builds) == 1
    assert all(value is values[0] for value in values)


def test_plan_resources_propagate_factory_failures_to_every_waiter():
    def factory():
        raise RuntimeError("substrate exploded")

    resources = PlanResources({"x": factory})
    with pytest.raises(RuntimeError, match="substrate exploded"):
        resources["x"]
    # Later accessors see the same failure instead of a hang or rebuild.
    with pytest.raises(RuntimeError, match="substrate exploded"):
        resources["x"]


def test_scheduler_knob_resolution(monkeypatch):
    assert resolve_plan_scheduler("serial") == "serial"
    assert resolve_plan_scheduler(None) == "dag"
    monkeypatch.setenv("REPRO_PLAN_SCHEDULER", "serial")
    assert resolve_plan_scheduler(None) == "serial"
    with pytest.raises(EstimationError, match="unknown plan scheduler"):
        resolve_plan_scheduler("threads")


def test_describe_renders_the_dag():
    from repro.experiments import compile_experiment

    description = compile_experiment("fig6", preset=TINY, rng=0).describe()
    assert "[resource] world" in description
    assert "<- world" in description
    assert "[finalize] <- world" in description
