"""Shared-memory plane publication round trips.

The pool must (a) publish each distinct large array exactly once no
matter how many objects reference it, (b) reproduce every array
bit-for-bit as a read-only view, and (c) actually retire its blocks on
close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import gnm, planted_category_graph
from repro.runtime import SharedArrayPool, sharedmem
from repro.sampling import (
    MultigraphRandomWalkSampler,
    StratifiedWeightedWalkSampler,
)


@pytest.fixture()
def world():
    graph, partition = planted_category_graph(k=5, scale=40, rng=3)
    relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=4)
    return graph, partition, relation


def test_graph_round_trip_is_exact_and_read_only(world):
    graph, partition, relation = world
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        assert pool.num_published >= 2  # indptr + indices at least
        clone = sharedmem.loads(payload)["graph"]
        assert clone.num_nodes == graph.num_nodes
        np.testing.assert_array_equal(clone.indptr, graph.indptr)
        np.testing.assert_array_equal(clone.indices, graph.indices)
        with pytest.raises(ValueError):
            clone.indptr.base[0] = 1  # the shared view is read-only


def test_shared_arrays_are_published_once(world):
    graph, partition, relation = world
    samplers = [
        StratifiedWeightedWalkSampler(graph, partition) for _ in range(3)
    ]
    with SharedArrayPool(threshold=1024) as pool:
        sharedmem.dumps({"graph": graph, "samplers": samplers}, pool)
        first = pool.num_published
        # The same object graph again: everything is already published.
        sharedmem.dumps({"graph": graph, "samplers": samplers}, pool)
        assert pool.num_published == first


def test_small_arrays_ride_the_pickle_stream(world):
    graph, partition, relation = world
    with SharedArrayPool(threshold=10**9) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        assert pool.num_published == 0
        clone = sharedmem.loads(payload)["graph"]
        np.testing.assert_array_equal(clone.indices, graph.indices)


def test_sampler_round_trip_samples_identically(world):
    graph, partition, relation = world
    sampler = MultigraphRandomWalkSampler([graph, relation])
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"sampler": sampler}, pool)
        clone = sharedmem.loads(payload)["sampler"]
        original = sampler.sample(200, rng=9)
        copied = clone.sample(200, rng=9)
        np.testing.assert_array_equal(original.nodes, copied.nodes)
        np.testing.assert_array_equal(original.weights, copied.weights)


def test_shared_pool_scope_is_ambient_and_deduplicates(world):
    """A plan-scoped pool is visible to executors and publishes once."""
    graph, partition, relation = world
    assert sharedmem.active_pool() is None
    with sharedmem.shared_pool(threshold=1024) as pool:
        assert sharedmem.active_pool() is pool
        # Two "cells" referencing the same substrate publish it once.
        sharedmem.dumps({"graph": graph, "partition": partition}, pool)
        first = pool.num_published
        sharedmem.dumps(
            {"graph": graph, "partition": partition, "relation": relation},
            pool,
        )
        assert pool.num_published >= first  # relation may add planes...
        before = pool.num_published
        sharedmem.dumps({"again": graph, "same": partition}, pool)
        assert pool.num_published == before  # ...re-published substrate never
        token = pool.publish(np.arange(5000, dtype=np.int64))
        name = token[1]
    assert sharedmem.active_pool() is None
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):  # exit closed + unlinked
        shared_memory.SharedMemory(name=name)


def test_pool_chain_reuses_primary_tokens_and_overlays_new_arrays(world):
    """Cell runs reuse plan-published arrays; new arrays stay cell-local."""
    graph, partition, relation = world
    with SharedArrayPool(threshold=1024) as primary:
        sharedmem.dumps({"graph": graph}, primary)  # plan-resource publish
        plan_wide = primary.num_published
        with SharedArrayPool(threshold=1024) as overlay:
            chain = sharedmem.PoolChain(primary, overlay)
            payload = sharedmem.dumps(
                {"graph": graph, "relation": relation}, chain
            )
            # The graph resolved to primary tokens; only the relation's
            # planes landed in the (cell-local) overlay.
            assert primary.num_published == plan_wide
            assert 0 < overlay.num_published
            clone = sharedmem.loads(payload)
            np.testing.assert_array_equal(clone["graph"].indices, graph.indices)
            np.testing.assert_array_equal(
                clone["relation"].indices, relation.indices
            )


def test_close_unlinks_blocks(world):
    graph, partition, relation = world
    pool = SharedArrayPool(threshold=1024)
    token = pool.publish(np.arange(10_000, dtype=np.int64))
    name = token[1]
    pool.close()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
