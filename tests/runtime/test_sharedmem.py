"""Shared-memory plane publication round trips.

The pool must (a) publish each distinct large array exactly once no
matter how many objects reference it, (b) reproduce every array
bit-for-bit as a read-only view, and (c) actually retire its blocks on
close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import gnm, planted_category_graph
from repro.runtime import SharedArrayPool, sharedmem
from repro.sampling import (
    MultigraphRandomWalkSampler,
    StratifiedWeightedWalkSampler,
)


@pytest.fixture()
def world():
    graph, partition = planted_category_graph(k=5, scale=40, rng=3)
    relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=4)
    return graph, partition, relation


def test_graph_round_trip_is_exact_and_read_only(world):
    graph, partition, relation = world
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        assert pool.num_published >= 2  # indptr + indices at least
        clone = sharedmem.loads(payload)["graph"]
        assert clone.num_nodes == graph.num_nodes
        np.testing.assert_array_equal(clone.indptr, graph.indptr)
        np.testing.assert_array_equal(clone.indices, graph.indices)
        with pytest.raises(ValueError):
            clone.indptr.base[0] = 1  # the shared view is read-only


def test_shared_arrays_are_published_once(world):
    graph, partition, relation = world
    samplers = [
        StratifiedWeightedWalkSampler(graph, partition) for _ in range(3)
    ]
    with SharedArrayPool(threshold=1024) as pool:
        sharedmem.dumps({"graph": graph, "samplers": samplers}, pool)
        first = pool.num_published
        # The same object graph again: everything is already published.
        sharedmem.dumps({"graph": graph, "samplers": samplers}, pool)
        assert pool.num_published == first


def test_small_arrays_ride_the_pickle_stream(world):
    graph, partition, relation = world
    with SharedArrayPool(threshold=10**9) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        assert pool.num_published == 0
        clone = sharedmem.loads(payload)["graph"]
        np.testing.assert_array_equal(clone.indices, graph.indices)


def test_sampler_round_trip_samples_identically(world):
    graph, partition, relation = world
    sampler = MultigraphRandomWalkSampler([graph, relation])
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"sampler": sampler}, pool)
        clone = sharedmem.loads(payload)["sampler"]
        original = sampler.sample(200, rng=9)
        copied = clone.sample(200, rng=9)
        np.testing.assert_array_equal(original.nodes, copied.nodes)
        np.testing.assert_array_equal(original.weights, copied.weights)


def test_close_unlinks_blocks(world):
    graph, partition, relation = world
    pool = SharedArrayPool(threshold=1024)
    token = pool.publish(np.arange(10_000, dtype=np.int64))
    name = token[1]
    pool.close()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
