"""Shared-memory plane publication round trips.

The pool must (a) publish each distinct large array exactly once no
matter how many objects reference it, (b) reproduce every array
bit-for-bit as a read-only view, and (c) actually retire its blocks on
close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import gnm, planted_category_graph
from repro.runtime import SharedArrayPool, sharedmem
from repro.sampling import (
    MultigraphRandomWalkSampler,
    StratifiedWeightedWalkSampler,
)


@pytest.fixture()
def world():
    graph, partition = planted_category_graph(k=5, scale=40, rng=3)
    relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=4)
    return graph, partition, relation


def test_graph_round_trip_is_exact_and_read_only(world):
    graph, partition, relation = world
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        assert pool.num_published >= 2  # indptr + indices at least
        clone = sharedmem.loads(payload)["graph"]
        assert clone.num_nodes == graph.num_nodes
        np.testing.assert_array_equal(clone.indptr, graph.indptr)
        np.testing.assert_array_equal(clone.indices, graph.indices)
        with pytest.raises(ValueError):
            clone.indptr.base[0] = 1  # the shared view is read-only


def test_shared_arrays_are_published_once(world):
    graph, partition, relation = world
    samplers = [
        StratifiedWeightedWalkSampler(graph, partition) for _ in range(3)
    ]
    with SharedArrayPool(threshold=1024) as pool:
        sharedmem.dumps({"graph": graph, "samplers": samplers}, pool)
        first = pool.num_published
        # The same object graph again: everything is already published.
        sharedmem.dumps({"graph": graph, "samplers": samplers}, pool)
        assert pool.num_published == first


def test_small_arrays_ride_the_pickle_stream(world):
    graph, partition, relation = world
    with SharedArrayPool(threshold=10**9) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        assert pool.num_published == 0
        clone = sharedmem.loads(payload)["graph"]
        np.testing.assert_array_equal(clone.indices, graph.indices)


def test_sampler_round_trip_samples_identically(world):
    graph, partition, relation = world
    sampler = MultigraphRandomWalkSampler([graph, relation])
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"sampler": sampler}, pool)
        clone = sharedmem.loads(payload)["sampler"]
        original = sampler.sample(200, rng=9)
        copied = clone.sample(200, rng=9)
        np.testing.assert_array_equal(original.nodes, copied.nodes)
        np.testing.assert_array_equal(original.weights, copied.weights)


def test_shared_pool_scope_is_ambient_and_deduplicates(world):
    """A plan-scoped pool is visible to executors and publishes once."""
    graph, partition, relation = world
    assert sharedmem.active_pool() is None
    with sharedmem.shared_pool(threshold=1024) as pool:
        assert sharedmem.active_pool() is pool
        # Two "cells" referencing the same substrate publish it once.
        sharedmem.dumps({"graph": graph, "partition": partition}, pool)
        first = pool.num_published
        sharedmem.dumps(
            {"graph": graph, "partition": partition, "relation": relation},
            pool,
        )
        assert pool.num_published >= first  # relation may add planes...
        before = pool.num_published
        sharedmem.dumps({"again": graph, "same": partition}, pool)
        assert pool.num_published == before  # ...re-published substrate never
        token = pool.publish(np.arange(5000, dtype=np.int64))
        name = token[1]
    assert sharedmem.active_pool() is None
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):  # exit closed + unlinked
        shared_memory.SharedMemory(name=name)


def test_pool_chain_reuses_primary_tokens_and_overlays_new_arrays(world):
    """Cell runs reuse plan-published arrays; new arrays stay cell-local."""
    graph, partition, relation = world
    with SharedArrayPool(threshold=1024) as primary:
        sharedmem.dumps({"graph": graph}, primary)  # plan-resource publish
        plan_wide = primary.num_published
        with SharedArrayPool(threshold=1024) as overlay:
            chain = sharedmem.PoolChain(primary, overlay)
            payload = sharedmem.dumps(
                {"graph": graph, "relation": relation}, chain
            )
            # The graph resolved to primary tokens; only the relation's
            # planes landed in the (cell-local) overlay.
            assert primary.num_published == plan_wide
            assert 0 < overlay.num_published
            clone = sharedmem.loads(payload)
            np.testing.assert_array_equal(clone["graph"].indices, graph.indices)
            np.testing.assert_array_equal(
                clone["relation"].indices, relation.indices
            )


def test_close_unlinks_blocks(world):
    graph, partition, relation = world
    pool = SharedArrayPool(threshold=1024)
    token = pool.publish(np.arange(10_000, dtype=np.int64))
    name = token[1]
    pool.close()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Memmap-backed planes: the zero-copy mmap token path
# ----------------------------------------------------------------------
@pytest.fixture()
def mapped_graph(tmp_path):
    from repro.graph.storage import graph_storage

    with graph_storage("memmap", directory=tmp_path):
        graph, partition = planted_category_graph(k=5, scale=40, rng=3)
    return graph, partition


def test_memmap_planes_tokenize_without_copying(mapped_graph):
    graph, partition = mapped_graph
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        # File-backed planes never copy into POSIX shared memory.
        assert pool.num_published == 0
        assert any(name.startswith("mmap:") for name in pool.block_names)
        clone = sharedmem.loads(payload)["graph"]
        np.testing.assert_array_equal(clone.indptr, graph.indptr)
        np.testing.assert_array_equal(clone.indices, graph.indices)
        assert not clone.indptr.base.flags.writeable
    sharedmem.release(pool.block_names)


def test_memmap_release_ignores_refcount_pin(mapped_graph):
    """The shm pin heuristic must not apply to mmap tokens.

    A live consumer view keeps an shm block pinned (detaching would
    invalidate its buffer), but an mmap entry is just a mapping of an
    on-disk file — dropping it is always safe, and the file stays.
    """
    graph, partition = mapped_graph
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"graph": graph}, pool)
        names = pool.block_names
        clone = sharedmem.loads(payload)["graph"]
        live_view = clone.indptr  # would pin an shm block
        sharedmem.release(names)
        # Every mmap entry is gone from the attach cache — no pinning.
        assert not any(name in sharedmem._ATTACHED for name in names)
        # The dropped mapping's data survives: the view still reads.
        np.testing.assert_array_equal(live_view, graph.indptr)


def test_pool_close_leaves_memmap_files(mapped_graph, tmp_path):
    graph, partition = mapped_graph
    pool = SharedArrayPool(threshold=1024)
    sharedmem.dumps({"graph": graph}, pool)
    assert pool.block_names
    pool.close()
    # close() unlinks shm blocks but never the on-disk planes.
    graph2, _ = mapped_graph
    np.testing.assert_array_equal(np.asarray(graph.indptr), np.asarray(graph2.indptr))


def test_ram_and_memmap_tokens_coexist(mapped_graph, world):
    mapped, _ = mapped_graph
    ram_graph, partition, relation = world
    with SharedArrayPool(threshold=1024) as pool:
        payload = sharedmem.dumps({"ram": ram_graph, "mapped": mapped}, pool)
        assert pool.num_published >= 2  # the RAM graph's planes
        assert any(name.startswith("mmap:") for name in pool.block_names)
        clones = sharedmem.loads(payload)
        np.testing.assert_array_equal(clones["ram"].indices, ram_graph.indices)
        np.testing.assert_array_equal(clones["mapped"].indices, mapped.indices)
    sharedmem.release(pool.block_names)
