"""Runtime telemetry plane: schema round-trips, output-neutrality,
fault attribution, and the logging knob.

The contract under test is determinism point 6
(:mod:`repro.runtime`): telemetry observes a run — spans, counters,
instants, shipped from workers over the existing reply channel — but
never participates in it. Recording a full trace changes no output
byte at any worker count; with recording off every probe is a single
``None`` check returning a shared null span.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.exceptions import ReproError
from repro.generators import planted_category_graph
from repro.log import configure_logging, get_logger, resolve_level
from repro.runtime import faults, runtime_options, telemetry_scope
from repro.runtime import telemetry
from repro.runtime.executor import ProcessSweepExecutor
from repro.runtime.pool import default_pool, reset_default_pools
from repro.sampling import StratifiedWeightedWalkSampler
from repro.stats import run_nrmse_sweep

from tests.runtime.test_executor import assert_sweeps_equal

LADDER = (40, 120, 360)
REPLICATIONS = 6
SEED = 99


@pytest.fixture(scope="module")
def world():
    graph, partition = planted_category_graph(k=6, scale=60, rng=7)
    return graph, partition


@pytest.fixture(scope="module")
def serial(world):
    graph, partition = world
    return run_nrmse_sweep(
        graph,
        partition,
        StratifiedWeightedWalkSampler(graph, partition),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="serial",
    )


def _sweep(world, executor):
    graph, partition = world
    return run_nrmse_sweep(
        graph,
        partition,
        StratifiedWeightedWalkSampler(graph, partition),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor=executor,
    )


def _spans(trace, name=None, cat=None):
    return [
        event
        for event in trace["traceEvents"]
        if event["ph"] == "X"
        and (name is None or event["name"] == name)
        and (cat is None or event["cat"] == cat)
    ]


def _instants(trace, name=None, cat=None):
    return [
        event
        for event in trace["traceEvents"]
        if event["ph"] == "i"
        and (name is None or event["name"] == name)
        and (cat is None or event["cat"] == cat)
    ]


# ----------------------------------------------------------------------
# Recorder round-trip and schema validation
# ----------------------------------------------------------------------
def test_recorder_round_trips_spans_counters_gauges(tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    with telemetry_scope(trace=trace_path, metrics=metrics_path) as recorder:
        assert telemetry.enabled()
        assert telemetry.recorder() is recorder
        with telemetry.span("rung", cat="driver", rung=1, size=120):
            telemetry.counter("checkpoint.saves", 2)
            telemetry.counter("checkpoint.saves", 3)
            telemetry.gauge("shm.peak_pool_bytes", 100)
            telemetry.gauge("shm.peak_pool_bytes", 50)  # max wins
        telemetry.instant("failover", cat="failover", slot=0)
    assert not telemetry.enabled()

    trace = json.loads(trace_path.read_text())
    assert telemetry.validate_trace(trace) == 1
    assert telemetry.validate_trace_file(trace_path) == 1
    (span,) = _spans(trace, name="rung")
    assert span["cat"] == "driver"
    assert span["args"]["rung"] == 1 and span["args"]["size"] == 120
    assert span["dur"] >= 1
    (instant,) = _instants(trace, name="failover")
    assert instant["s"] == "p"
    # Metadata rows name the driver process row.
    process_rows = [
        event
        for event in trace["traceEvents"]
        if event["ph"] == "M" and event["name"] == "process_name"
    ]
    assert any(row["args"]["name"] == "driver" for row in process_rows)

    metrics = telemetry.validate_metrics_file(metrics_path)
    assert metrics["schema"] == telemetry.METRICS_SCHEMA
    assert metrics["counters"]["checkpoint.saves"] == 5
    assert metrics["gauges"]["shm.peak_pool_bytes"] == 100
    assert metrics["phases"]["driver"]["rung"]["count"] == 1
    assert metrics["phases"]["driver"]["rung"]["seconds"] > 0
    assert metrics["failover"]["events"][0]["event"] == "failover"
    assert metrics["wall_seconds"] > 0


def test_merge_remote_folds_a_worker_payload():
    import os

    recorder = telemetry.TelemetryRecorder(process_label="driver")
    # Stands in for a worker-side collector; in production the payload
    # crosses a real process boundary, here only the label differs.
    remote = telemetry.TelemetryRecorder(process_label="worker test")
    with remote.span("rung", cat="worker", rung=0):
        pass
    remote.counter("checkpoint.rungs_loaded", 3)
    recorder.merge_remote(remote.drain())
    recorder.merge_remote(None)  # in-process collectors ship nothing
    recorder.finish()
    events = recorder.trace_events()
    assert any(
        event["ph"] == "X" and event["name"] == "rung" for event in events
    )
    metrics = recorder.metrics_summary()
    assert metrics["counters"]["checkpoint.rungs_loaded"] == 3
    pid = str(os.getpid())
    assert pid in metrics["workers"]
    assert 0.0 <= metrics["workers"][pid]["utilization"] <= 1.0


def test_validators_reject_malformed_documents():
    with pytest.raises(ReproError, match="traceEvents"):
        telemetry.validate_trace({})
    with pytest.raises(ReproError, match="schema"):
        telemetry.validate_metrics({"schema": "other"})


# ----------------------------------------------------------------------
# Disabled fast path: observability must cost a None check
# ----------------------------------------------------------------------
def test_disabled_probes_are_shared_noops():
    assert not telemetry.enabled()
    first = telemetry.span("anything", cat="driver")
    second = telemetry.span("else", cat="worker", rung=3)
    assert first is second  # one shared null span, no allocation
    with first:
        pass
    telemetry.counter("checkpoint.saves", 1)  # all silently dropped
    telemetry.gauge("shm.peak_pool_bytes", 9)
    telemetry.instant("failover", cat="failover")
    assert telemetry.recorder() is None


def test_worker_collector_is_off_when_not_requested():
    collector, ship = telemetry.worker_collector(None)
    assert collector is None and not ship


# ----------------------------------------------------------------------
# Fault attribution: injected chaos lands in the trace, correctly tagged
# ----------------------------------------------------------------------
def test_killed_worker_leaves_failover_instant_with_rung_phase(
    world, serial, tmp_path
):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    executor = ProcessSweepExecutor(workers=2)
    with telemetry_scope(trace=trace_path, metrics=metrics_path):
        with faults.inject("kill-worker:rung=1,shard=0"):
            result = _sweep(world, executor)
    assert_sweeps_equal(serial, result, "traced kill recovery")
    assert executor.failover_log

    trace = json.loads(trace_path.read_text())
    telemetry.validate_trace(trace)
    injected = _instants(trace, name="fault.injected")
    assert any(
        event["args"]["kind"] == "kill-worker" for event in injected
    ), "the injected kill never reached the trace"
    recoveries = _instants(trace, name="failover", cat="failover")
    assert recoveries, "the recovery never reached the trace"
    assert any(
        "rung 1" in event["args"]["phase"] for event in recoveries
    ), "failover instant lost its phase attribution"

    metrics = telemetry.validate_metrics_file(metrics_path)
    assert metrics["counters"]["failover.recoveries"] >= 1
    assert metrics["counters"]["faults.injected"] >= 1
    assert metrics["failover"]["recoveries"] >= 1
    assert any(
        event["event"] == "failover" for event in metrics["failover"]["events"]
    )


def test_hung_worker_failover_is_tagged_as_timeout(world, serial, tmp_path):
    trace_path = tmp_path / "trace.json"
    executor = ProcessSweepExecutor(workers=2, task_timeout=0.75)
    with telemetry_scope(trace=trace_path):
        with faults.inject("hang-worker:shard=0"):
            result = _sweep(world, executor)
    assert_sweeps_equal(serial, result, "traced hang recovery")
    trace = json.loads(trace_path.read_text())
    assert any(
        event["args"]["timeout"]
        for event in _instants(trace, name="failover", cat="failover")
    ), "the hang was not tagged timeout=True in the trace"


def test_degradation_to_serial_leaves_a_degrade_marker(
    world, serial, tmp_path
):
    reset_default_pools()
    trace_path = tmp_path / "trace.json"
    executor = ProcessSweepExecutor(workers=2)
    try:
        with telemetry_scope(trace=trace_path):
            with faults.inject("fail-respawn:times=8"):
                with pytest.warns(RuntimeWarning, match="in-process serial"):
                    result = _sweep(world, executor)
    finally:
        reset_default_pools()
    assert_sweeps_equal(serial, result, "traced serial degradation")
    trace = json.loads(trace_path.read_text())
    degrades = _instants(trace, name="degrade", cat="failover")
    assert degrades, "degradation never reached the trace"
    assert any(
        "in-process serial" in event["args"]["message"] for event in degrades
    )


# ----------------------------------------------------------------------
# Failover logs surface uniformly (the stale-log fix)
# ----------------------------------------------------------------------
def test_failover_log_resets_between_runs(world, monkeypatch):
    # The clean-run assertion below needs the run to actually be clean:
    # shield it from any armed chaos environment (the CI chaos job).
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    executor = ProcessSweepExecutor(workers=2)
    with faults.inject("kill-worker:rung=1,shard=0"):
        _sweep(world, executor)
    assert executor.failover_log
    _sweep(world, executor)  # an undisturbed run on the same instance
    assert executor.failover_log == [], (
        "a clean run kept the previous run's failover log"
    )


def test_run_from_samples_surfaces_the_failover_log(world):
    graph, partition = world
    sampler = StratifiedWeightedWalkSampler(graph, partition)
    samples = [
        sampler.sample(LADDER[-1], rng=seed)
        for seed in range(REPLICATIONS)
    ]
    executor = ProcessSweepExecutor(workers=2)
    from repro.stats.replication import run_nrmse_sweep_from_samples

    with faults.inject("kill-worker:rung=1,shard=0"):
        run_nrmse_sweep_from_samples(
            graph, partition, samples, LADDER, executor=executor
        )
    assert executor.failover_log, (
        "the pre-drawn path dropped its failover log"
    )
    assert executor.failover_log[0]["slot"] == 0


# ----------------------------------------------------------------------
# Worker spans cross the process boundary
# ----------------------------------------------------------------------
def test_worker_rows_and_spans_reach_the_parent_trace(world, tmp_path):
    reset_default_pools()  # force fresh spawns inside the scope
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    try:
        with telemetry_scope(trace=trace_path, metrics=metrics_path):
            _sweep(world, ProcessSweepExecutor(workers=2))
    finally:
        reset_default_pools()
    trace = json.loads(trace_path.read_text())
    telemetry.validate_trace(trace)
    worker_rows = {
        event["args"]["name"]
        for event in trace["traceEvents"]
        if event["ph"] == "M"
        and event["name"] == "process_name"
        and event["args"]["name"].startswith("worker ")
    }
    # >= rather than ==: under an armed chaos environment (REPRO_FAULTS)
    # a struck worker respawns, adding a third row.
    assert len(worker_rows) >= 2, "expected one timeline row per worker"
    for name in ("sample", "observe", "rung"):
        assert _spans(trace, name=name, cat="worker"), (
            f"worker {name!r} spans never shipped to the parent"
        )
    assert _spans(trace, name="rung", cat="driver")
    metrics = telemetry.validate_metrics_file(metrics_path)
    assert len(metrics["workers"]) >= 2
    assert metrics["counters"]["pool.workers_spawned"] >= 2
    assert metrics["counters"]["shm.published_bytes"] > 0
    assert metrics["counters"]["shm.retired_bytes"] > 0


def test_fig6_plan_trace_is_output_neutral_and_nested(tmp_path):
    """The acceptance run: a 2-worker fig6 plan under ``--trace`` is
    byte-identical to the untraced run, and its trace carries per-worker
    timeline rows with plan -> cell -> rung span nesting."""
    from repro.experiments import run_experiment
    from tests.experiments.test_experiments import TINY
    from tests.runtime.test_plan import assert_results_equal

    serial_result = run_experiment("fig6", preset=TINY, rng=0)
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    with telemetry_scope(trace=trace_path, metrics=metrics_path):
        with runtime_options(
            executor="process", workers=2, plan_scheduler="dag"
        ):
            traced = run_experiment("fig6", preset=TINY, rng=0)
    assert_results_equal(serial_result, traced, "fig6 traced vs untraced")

    trace = json.loads(trace_path.read_text())
    telemetry.validate_trace(trace)
    (plan_span,) = _spans(trace, name="plan", cat="plan")
    cell_spans = _spans(trace, name="cell", cat="plan")
    assert cell_spans, "no cell spans in the plan trace"
    rung_spans = _spans(trace, name="rung", cat="driver")
    assert rung_spans, "no driver rung spans in the plan trace"

    def contains(outer, inner):
        return (
            outer["ts"] <= inner["ts"]
            and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        )

    assert all(contains(plan_span, cell) for cell in cell_spans), (
        "cell spans escape the plan span"
    )
    sweep_cells = [c for c in cell_spans if c["args"].get("kind") == "sweep"]
    assert all(
        any(contains(cell, rung) for cell in sweep_cells)
        for rung in rung_spans
    ), "rung spans escape every sweep-cell span"
    # Worker task spans are labelled by the cell that dispatched them.
    task_labels = {
        span["args"].get("task")
        for span in _spans(trace, cat="worker")
    }
    assert task_labels & {cell["args"]["key"] for cell in sweep_cells}, (
        "worker spans lost their cell attribution"
    )

    metrics = telemetry.validate_metrics_file(metrics_path)
    assert metrics["workers"], "no worker utilization rows"
    assert metrics["counters"]["shm.published_bytes"] > 0
    # Zero on a quiet run; an armed chaos environment (REPRO_FAULTS) may
    # legitimately add recoveries — either way count and events agree.
    assert metrics["failover"]["recoveries"] == len(
        [
            event
            for event in metrics["failover"]["events"]
            if event["event"] == "failover"
        ]
    )


# ----------------------------------------------------------------------
# Logging hygiene
# ----------------------------------------------------------------------
def test_get_logger_lives_under_the_repro_hierarchy():
    assert get_logger("repro.runtime.pool").name == "repro.runtime.pool"
    assert get_logger("custom").name == "repro.custom"
    root = logging.getLogger("repro")
    assert any(
        isinstance(handler, logging.NullHandler)
        for handler in root.handlers
    ), "library import must attach a NullHandler"


def test_resolve_level_accepts_names_and_rejects_junk():
    assert resolve_level("debug") == logging.DEBUG
    assert resolve_level("WARNING") == logging.WARNING
    assert resolve_level(15) == 15
    with pytest.raises(ReproError, match="unknown log level"):
        resolve_level("loud")


def test_configure_logging_is_a_noop_without_a_request(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    root = logging.getLogger("repro")
    before = list(root.handlers)
    configure_logging()
    assert list(root.handlers) == before


def test_configure_logging_verbose_installs_one_stream_handler():
    root = logging.getLogger("repro")
    try:
        configure_logging(verbose=True)
        streams = [
            handler
            for handler in root.handlers
            if isinstance(handler, logging.StreamHandler)
            and not isinstance(handler, logging.NullHandler)
        ]
        assert len(streams) == 1
        assert root.level == logging.DEBUG
        configure_logging(verbose=True)  # idempotent
        assert [
            handler
            for handler in root.handlers
            if isinstance(handler, logging.StreamHandler)
            and not isinstance(handler, logging.NullHandler)
        ] == streams
    finally:
        for handler in list(root.handlers):
            if isinstance(handler, logging.StreamHandler) and not isinstance(
                handler, logging.NullHandler
            ):
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_trace_and_metrics_flags_write_valid_files(tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.delenv("REPRO_LOG", raising=False)
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert (
        main(
            [
                "run",
                "table1",
                "--trace",
                str(trace_path),
                "--metrics",
                str(metrics_path),
            ]
        )
        == 0
    )
    assert telemetry.validate_trace_file(trace_path) > 0
    metrics = telemetry.validate_metrics_file(metrics_path)
    assert metrics["phases"], "a CLI run recorded no phases at all"
