"""Tests for NodeSample and the sampler interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.sampling import NodeSample


class TestNodeSample:
    def test_basic(self):
        s = NodeSample(np.array([1, 2, 2]), np.ones(3), design="uis", uniform=True)
        assert s.size == 3
        assert len(s) == 3
        assert s.num_distinct() == 2

    def test_mismatched_lengths(self):
        with pytest.raises(SamplingError):
            NodeSample(np.array([1, 2]), np.ones(3))

    def test_nonpositive_weights(self):
        with pytest.raises(SamplingError):
            NodeSample(np.array([1]), np.array([0.0]))

    def test_two_dimensional_rejected(self):
        with pytest.raises(SamplingError):
            NodeSample(np.array([[1]]), np.array([[1.0]]))

    def test_thin(self):
        s = NodeSample(np.arange(10), np.ones(10), design="rw")
        thinned = s.thin(3)
        assert list(thinned.nodes) == [0, 3, 6, 9]
        assert "thin3" in thinned.design

    def test_thin_period_one_is_identity(self):
        s = NodeSample(np.arange(5), np.ones(5), design="rw")
        assert s.thin(1).design == "rw"
        assert s.thin(1).size == 5

    def test_thin_invalid(self):
        s = NodeSample(np.array([1]), np.ones(1))
        with pytest.raises(SamplingError):
            s.thin(0)

    def test_truncate(self):
        s = NodeSample(np.arange(10), np.ones(10))
        assert s.truncate(4).size == 4
        assert list(s.truncate(4).nodes) == [0, 1, 2, 3]

    def test_truncate_invalid(self):
        with pytest.raises(SamplingError):
            NodeSample(np.array([1]), np.ones(1)).truncate(-1)

    def test_concat(self):
        a = NodeSample(np.array([1]), np.array([2.0]), design="rw")
        b = NodeSample(np.array([3]), np.array([4.0]), design="rw")
        joined = a.concat(b)
        assert joined.size == 2
        assert list(joined.weights) == [2.0, 4.0]

    def test_concat_uniformity_mismatch(self):
        a = NodeSample(np.array([1]), np.ones(1), uniform=True)
        b = NodeSample(np.array([2]), np.ones(1), uniform=False)
        with pytest.raises(SamplingError):
            a.concat(b)

    def test_repr(self):
        s = NodeSample(np.array([1]), np.ones(1), design="uis", uniform=True)
        assert "design='uis'" in repr(s)
