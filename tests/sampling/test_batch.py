"""Batched-vs-sequential equivalence for the multi-walker engine.

The contract under test (see ``repro.sampling.batch``): replicate ``r``
of ``sample_many(n, R, rng)`` is bit-for-bit identical to
``sampler.sample(n, rng=spawn_rngs(rng, R)[r])`` — same trajectory,
same weights — for every design, including burn-in and fixed starts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.generators import gnm, planted_category_graph
from repro.graph import Graph
from repro.rng import ensure_rng, spawn_rngs
from repro.sampling import (
    BatchNodeSample,
    MetropolisHastingsSampler,
    NodeSample,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    StratifiedWeightedWalkSampler,
    UniformIndependenceSampler,
    WeightedRandomWalkSampler,
    sample_many,
)


@pytest.fixture(scope="module")
def medium_graph() -> Graph:
    return gnm(300, 1800, rng=0)


@pytest.fixture(scope="module")
def planted():
    return planted_category_graph(k=8, scale=40, rng=0)


def _arc_weights(graph: Graph) -> np.ndarray:
    return np.abs(np.sin(np.arange(len(graph.indices)))) + 0.5


def _assert_batch_equals_sequential(sampler, n, replications, seed):
    batch = sampler.sample_many(n, replications, rng=seed)
    assert isinstance(batch, BatchNodeSample)
    assert batch.num_replicates == replications
    assert batch.draws_per_replicate == n
    streams = spawn_rngs(ensure_rng(seed), replications)
    for r, stream in enumerate(streams):
        sequential = sampler.sample(n, rng=stream)
        replicate = batch.replicate(r)
        assert isinstance(replicate, NodeSample)
        assert np.array_equal(sequential.nodes, replicate.nodes), (
            f"trajectory mismatch in replicate {r}"
        )
        assert np.array_equal(sequential.weights, replicate.weights), (
            f"weight mismatch in replicate {r}"
        )
        assert sequential.design == replicate.design
        assert sequential.uniform == replicate.uniform


class TestTrajectoryEquivalence:
    def test_rw(self, medium_graph):
        _assert_batch_equals_sequential(
            RandomWalkSampler(medium_graph), 500, 8, seed=1
        )

    def test_mhrw(self, medium_graph):
        _assert_batch_equals_sequential(
            MetropolisHastingsSampler(medium_graph), 500, 8, seed=2
        )

    def test_wrw(self, medium_graph):
        sampler = WeightedRandomWalkSampler(
            medium_graph, _arc_weights(medium_graph)
        )
        _assert_batch_equals_sequential(sampler, 500, 8, seed=3)

    def test_rwj(self, medium_graph):
        _assert_batch_equals_sequential(
            RandomWalkWithJumpsSampler(medium_graph, alpha=4.0), 500, 8, seed=4
        )

    def test_swrw_subclass_uses_wrw_kernel(self, planted):
        graph, partition = planted
        sampler = StratifiedWeightedWalkSampler(graph, partition)
        _assert_batch_equals_sequential(sampler, 400, 6, seed=5)

    def test_burn_in(self, medium_graph):
        _assert_batch_equals_sequential(
            RandomWalkSampler(medium_graph, burn_in=17), 300, 5, seed=6
        )

    def test_fixed_start(self, medium_graph):
        _assert_batch_equals_sequential(
            RandomWalkSampler(medium_graph, start=7), 300, 5, seed=7
        )

    def test_fallback_design(self, medium_graph):
        # Non-walk designs go through the sequential fallback but keep
        # the same per-stream contract.
        _assert_batch_equals_sequential(
            UniformIndependenceSampler(medium_graph), 200, 4, seed=8
        )

    def test_module_level_entry_point(self, medium_graph):
        sampler = RandomWalkSampler(medium_graph)
        a = sample_many(sampler, 100, 3, rng=9)
        b = sampler.sample_many(100, 3, rng=9)
        assert np.array_equal(a.nodes, b.nodes)

    def test_deterministic_given_seed(self, medium_graph):
        sampler = MetropolisHastingsSampler(medium_graph)
        a = sampler.sample_many(200, 4, rng=11)
        b = sampler.sample_many(200, 4, rng=11)
        assert np.array_equal(a.nodes, b.nodes)
        assert np.array_equal(a.weights, b.weights)


class TestBatchNodeSample:
    def test_replicates_are_views(self, medium_graph):
        batch = RandomWalkSampler(medium_graph).sample_many(100, 4, rng=0)
        rep = batch.replicate(2)
        assert np.shares_memory(rep.nodes, batch.nodes)
        assert np.shares_memory(rep.weights, batch.weights)

    def test_iteration_and_len(self, medium_graph):
        batch = RandomWalkSampler(medium_graph).sample_many(50, 3, rng=0)
        reps = list(batch)
        assert len(batch) == 3
        assert len(reps) == 3
        assert all(r.size == 50 for r in reps)
        assert [r.nodes.tolist() for r in reps] == [
            r.nodes.tolist() for r in batch.replicates()
        ]

    def test_replicate_out_of_range(self, medium_graph):
        batch = RandomWalkSampler(medium_graph).sample_many(50, 3, rng=0)
        with pytest.raises(SamplingError):
            batch.replicate(3)
        with pytest.raises(SamplingError):
            batch.replicate(-1)

    def test_shape_validation(self):
        with pytest.raises(SamplingError):
            BatchNodeSample(np.zeros(3, dtype=np.int64), np.ones(3))
        with pytest.raises(SamplingError):
            BatchNodeSample(
                np.zeros((2, 3), dtype=np.int64), np.ones((2, 4))
            )

    def test_bad_replications(self, medium_graph):
        sampler = RandomWalkSampler(medium_graph)
        with pytest.raises(SamplingError):
            sampler.sample_many(10, 0)
        with pytest.raises(SamplingError):
            sampler.sample_many(0, 4)


class TestIsolatedNodeHandling:
    """The kernels' per-step dead-walker check runs off a precomputed
    isolated-node mask (no per-step degree gather) — and is skipped
    entirely on graphs with no isolated nodes."""

    @pytest.fixture()
    def graph_with_isolate(self) -> Graph:
        # Node 4 is isolated; 0..3 form a cycle.
        return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 0)])

    def test_isolated_mask_helper(self):
        from repro.sampling.batch import _isolated_mask

        assert _isolated_mask(np.array([1, 2, 3])) is None
        mask = _isolated_mask(np.array([1, 0, 2, 0]))
        assert mask.tolist() == [False, True, False, True]

    def test_batch_raises_on_isolated_start(self, graph_with_isolate):
        sampler = RandomWalkSampler(graph_with_isolate, start=4)
        with pytest.raises(SamplingError, match="isolated node 4"):
            sampler.sample(5, rng=0)
        with pytest.raises(SamplingError, match="isolated node 4"):
            sampler.sample_many(5, 3, rng=0)

    def test_wrw_batch_raises_on_isolated_start(self, graph_with_isolate):
        weights = np.ones(len(graph_with_isolate.indices))
        for next_hop in ("search", "alias"):
            sampler = WeightedRandomWalkSampler(
                graph_with_isolate, weights, start=4, next_hop=next_hop
            )
            with pytest.raises(SamplingError, match="isolated node 4"):
                sampler.sample_many(5, 3, rng=0)

    def test_random_starts_avoid_isolates_and_stay_bit_equal(
        self, graph_with_isolate
    ):
        # Exercises the active mask-check branch on every step.
        _assert_batch_equals_sequential(
            RandomWalkSampler(graph_with_isolate), 50, 6, seed=13
        )
        _assert_batch_equals_sequential(
            MetropolisHastingsSampler(graph_with_isolate), 50, 6, seed=14
        )


class TestWrwLocalCumsum:
    def test_huge_foreign_weights_do_not_break_selection(self):
        """Per-run local sums stay exact under extreme weight skew.

        With one global cumulative sum, a 2**53 weight on an unrelated
        edge absorbs the +1.0-sized increments of later runs, collapsing
        their inverse-CDF lookup onto a single neighbor. Local sums are
        immune.
        """
        graph = Graph.from_edges(5, [(0, 1), (2, 3), (2, 4)])
        arc_weights = np.ones(len(graph.indices))
        src = graph.arc_sources
        for i in range(len(arc_weights)):
            u, v = int(src[i]), int(graph.indices[i])
            if {u, v} == {0, 1}:
                arc_weights[i] = 2.0**53
        sampler = WeightedRandomWalkSampler(graph, arc_weights, start=2)
        sample = sampler.sample(2000, rng=0)
        visited = set(int(v) for v in sample.nodes)
        # From node 2 both equal-weight neighbors must be reachable.
        assert {3, 4} <= visited

    def test_local_cumulative_matches_per_run_cumsum(self):
        graph = gnm(50, 200, rng=1)
        weights = np.abs(np.cos(np.arange(len(graph.indices)))) + 0.25
        sampler = WeightedRandomWalkSampler(graph, weights)
        indptr = graph.indptr
        for v in range(graph.num_nodes):
            lo, hi = indptr[v], indptr[v + 1]
            if hi > lo:
                np.testing.assert_allclose(
                    sampler._local_cumulative[lo:hi],
                    np.cumsum(weights[lo:hi]),
                    rtol=1e-12,
                )

    def test_strengths_equal_run_totals(self):
        graph = gnm(40, 120, rng=2)
        weights = np.full(len(graph.indices), 3.0)
        sampler = WeightedRandomWalkSampler(graph, weights)
        assert np.allclose(sampler.strengths, 3.0 * graph.degrees())


class TestVariateWindows:
    """Chunked step-window draws preserve the bit-equality contract.

    The kernels no longer pre-draw the full (blocks, total, R) variate
    cube; they hold a (blocks, window, R) buffer refilled from
    per-stream cursors. Chunked ``Generator.random`` calls yield the
    identical value stream, so any window size must reproduce the
    sequential trajectories exactly — including for the two-block
    kernels (MHRW, RWJ) whose later blocks replay past the earlier
    blocks' draws.
    """

    @pytest.mark.parametrize("window", ["1", "7", "100000"])
    def test_any_window_is_bit_equal_to_sequential(
        self, medium_graph, monkeypatch, window
    ):
        monkeypatch.setenv("REPRO_VARIATE_WINDOW", window)
        for sampler in (
            RandomWalkSampler(medium_graph),
            MetropolisHastingsSampler(medium_graph),  # two variate blocks
            RandomWalkWithJumpsSampler(medium_graph, alpha=4.0),
            WeightedRandomWalkSampler(medium_graph, _arc_weights(medium_graph)),
        ):
            _assert_batch_equals_sequential(sampler, 120, 4, seed=23)

    def test_window_sizes_agree_with_each_other(self, medium_graph, monkeypatch):
        sampler = MetropolisHastingsSampler(medium_graph)
        monkeypatch.setenv("REPRO_VARIATE_WINDOW", "13")
        small = sample_many(sampler, 200, 3, rng=5)
        monkeypatch.setenv("REPRO_VARIATE_WINDOW", "1000000")
        large = sample_many(sampler, 200, 3, rng=5)
        assert np.array_equal(small.nodes, large.nodes)
        assert np.array_equal(small.weights, large.weights)

    def test_variate_memory_is_window_bounded(self):
        from repro.sampling.batch import _FrontierVariates

        streams = spawn_rngs(0, 8)
        total, window = 5_000, 256
        variates = _FrontierVariates(streams, 2, total, window=window)
        assert variates._buf.shape == (2, window, 8)  # O(R x window), not O(R x n)
        reference = spawn_rngs(0, 8)
        expected = np.stack([
            [stream.random(total), stream.random(total)] for stream in reference
        ])  # (R, blocks, total) — the old cube, for comparison only
        for i in range(total):  # kernels advance the frontier step by step
            np.testing.assert_array_equal(
                variates.step(i), expected[:, :, i].T
            )

    def test_bad_window_rejected(self, medium_graph, monkeypatch):
        monkeypatch.setenv("REPRO_VARIATE_WINDOW", "0")
        with pytest.raises(SamplingError, match="variate window"):
            sample_many(RandomWalkSampler(medium_graph), 50, 2, rng=0)
        monkeypatch.setenv("REPRO_VARIATE_WINDOW", "not-a-number")
        with pytest.raises(SamplingError, match="REPRO_VARIATE_WINDOW"):
            sample_many(RandomWalkSampler(medium_graph), 50, 2, rng=0)
