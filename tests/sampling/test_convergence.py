"""Tests for walk-convergence diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.sampling import (
    autocorrelation,
    effective_sample_size,
    geweke_z,
    recommend_thinning,
)


class TestGeweke:
    def test_iid_sample_passes(self):
        rng = np.random.default_rng(0)
        z = geweke_z(rng.normal(size=5000))
        assert abs(z) < 3

    def test_drifting_sample_fails(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=5000) + np.linspace(0, 5, 5000)
        assert abs(geweke_z(values)) > 3

    def test_too_short_rejected(self):
        with pytest.raises(SamplingError):
            geweke_z(np.ones(5))

    def test_bad_fractions(self):
        with pytest.raises(SamplingError):
            geweke_z(np.ones(100), first=0.9, last=0.9)

    def test_constant_series(self):
        assert geweke_z(np.ones(100)) == 0.0


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(1)
        acf = autocorrelation(rng.normal(size=1000))
        assert acf[0] == pytest.approx(1.0)

    def test_iid_has_small_lags(self):
        rng = np.random.default_rng(2)
        acf = autocorrelation(rng.normal(size=20_000), max_lag=5)
        assert np.all(np.abs(acf[1:]) < 0.05)

    def test_ar1_decay(self):
        rng = np.random.default_rng(3)
        x = np.zeros(20_000)
        for i in range(1, len(x)):
            x[i] = 0.8 * x[i - 1] + rng.normal()
        acf = autocorrelation(x, max_lag=3)
        assert acf[1] == pytest.approx(0.8, abs=0.05)
        assert acf[2] == pytest.approx(0.64, abs=0.07)

    def test_constant_series(self):
        acf = autocorrelation(np.ones(50), max_lag=3)
        assert acf[0] == 1.0
        assert np.all(acf[1:] == 0.0)

    def test_too_short(self):
        with pytest.raises(SamplingError):
            autocorrelation(np.array([1.0]))

    def test_max_lag_clamped(self):
        acf = autocorrelation(np.arange(5, dtype=float), max_lag=100)
        assert len(acf) == 5


class TestEss:
    def test_iid_ess_near_n(self):
        rng = np.random.default_rng(4)
        ess = effective_sample_size(rng.normal(size=10_000))
        assert ess > 7000

    def test_correlated_ess_much_smaller(self):
        rng = np.random.default_rng(5)
        x = np.zeros(10_000)
        for i in range(1, len(x)):
            x[i] = 0.95 * x[i - 1] + rng.normal()
        assert effective_sample_size(x) < 2000


class TestThinning:
    def test_iid_needs_no_thinning(self):
        rng = np.random.default_rng(6)
        assert recommend_thinning(rng.normal(size=10_000)) == 1

    def test_correlated_needs_thinning(self):
        rng = np.random.default_rng(7)
        x = np.zeros(10_000)
        for i in range(1, len(x)):
            x[i] = 0.9 * x[i - 1] + rng.normal()
        assert recommend_thinning(x) > 5
