"""Cross-design equivalence harness for the batched sampling engine.

Every exported sampler design runs through both ``sample()`` and
``sample_many()`` on shared fixtures, asserting the contract its
next-hop machinery promises:

* **bit-equality** — replicate ``r`` of ``sample_many(n, R, rng)``
  equals ``sample(n, rng=spawn_rngs(rng, R)[r])`` exactly. This holds
  for *every* design: registered kernels guarantee it by construction,
  and the sequential fallback trivially so. New kernels registered via
  ``register_kernel`` are covered automatically once their design is
  added to ``DESIGNS`` below.
* **distributional equality** — the alias next-hop engine consumes its
  uniform variate differently than the binary search, so alias walks
  are compared statistically: exact reconstruction of the encoded
  per-arc probabilities, plus a chi-square test on sampled next-hop
  frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.generators import gnm, planted_category_graph
from repro.graph import CategoryPartition, Graph
from repro.rng import ensure_rng, spawn_rngs
from repro.sampling import (
    BreadthFirstSampler,
    ForestFireSampler,
    MetropolisHastingsSampler,
    MultigraphRandomWalkSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    Sampler,
    StratifiedWeightedWalkSampler,
    UniformIndependenceSampler,
    WeightedIndependenceSampler,
    WeightedRandomWalkSampler,
    is_registered,
    register_kernel,
    registered_kernel,
)
from repro.sampling import batch as batch_module


@dataclass(frozen=True)
class World:
    """Shared fixtures every design samples from."""

    graph: Graph
    partition: CategoryPartition
    relation: Graph  # second relation over the same node set
    arc_weights: np.ndarray


@pytest.fixture(scope="module")
def world() -> World:
    graph, partition = planted_category_graph(k=8, scale=40, rng=0)
    relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=1)
    arc_weights = np.abs(np.sin(np.arange(len(graph.indices)))) + 0.5
    return World(graph, partition, relation, arc_weights)


#: name -> (factory, has_batch_kernel). Add new designs here and the
#: whole harness (bit-equality + kernel-coverage checks) applies.
DESIGNS = {
    "uis": (lambda w: UniformIndependenceSampler(w.graph), False),
    "wis": (
        lambda w: WeightedIndependenceSampler(
            w.graph, np.linspace(0.5, 2.0, w.graph.num_nodes)
        ),
        False,
    ),
    "rw": (lambda w: RandomWalkSampler(w.graph), True),
    "rw-burnin": (lambda w: RandomWalkSampler(w.graph, burn_in=13), True),
    "mhrw": (lambda w: MetropolisHastingsSampler(w.graph), True),
    "wrw": (
        lambda w: WeightedRandomWalkSampler(w.graph, w.arc_weights),
        True,
    ),
    "wrw-alias": (
        lambda w: WeightedRandomWalkSampler(
            w.graph, w.arc_weights, next_hop="alias"
        ),
        True,
    ),
    "rwj": (lambda w: RandomWalkWithJumpsSampler(w.graph, alpha=5.0), True),
    "swrw": (
        lambda w: StratifiedWeightedWalkSampler(w.graph, w.partition),
        True,
    ),
    "swrw-alias": (
        lambda w: StratifiedWeightedWalkSampler(
            w.graph, w.partition, next_hop="alias"
        ),
        True,
    ),
    "multigraph": (
        lambda w: MultigraphRandomWalkSampler([w.graph, w.relation]),
        True,
    ),
    "bfs": (lambda w: BreadthFirstSampler(w.graph), True),
    "forest_fire": (lambda w: ForestFireSampler(w.graph), True),
}


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_batch_replicates_bit_equal_sequential(name, world):
    factory, _ = DESIGNS[name]
    sampler = factory(world)
    n, replications, seed = 180, 5, sum(map(ord, name)) % 1000
    batch = sampler.sample_many(n, replications, rng=seed)
    assert batch.num_replicates == replications
    assert batch.draws_per_replicate == n
    streams = spawn_rngs(ensure_rng(seed), replications)
    for r, stream in enumerate(streams):
        sequential = sampler.sample(n, rng=stream)
        replicate = batch.replicate(r)
        assert np.array_equal(sequential.nodes, replicate.nodes), (
            f"{name}: trajectory mismatch in replicate {r}"
        )
        assert np.array_equal(sequential.weights, replicate.weights), (
            f"{name}: weight mismatch in replicate {r}"
        )
        assert sequential.design == replicate.design
        assert sequential.uniform == replicate.uniform


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_kernel_coverage_matches_declaration(name, world):
    factory, has_kernel = DESIGNS[name]
    kernel = registered_kernel(factory(world))
    if has_kernel:
        assert kernel is not None, f"{name} lost its batch kernel"
    else:
        assert kernel is None, f"{name} unexpectedly grew a batch kernel"


# ----------------------------------------------------------------------
# Alias next-hop: statistical equivalence with the binary search
# ----------------------------------------------------------------------
def _chi_square_bound(df: int) -> float:
    """Loose (~4 sigma) upper quantile of chi-square with ``df`` dofs."""
    return df + 4.0 * np.sqrt(2.0 * df)


def _star_world(num_leaves: int = 9):
    """Star graph with linearly skewed edge weights (leaf i weighs i)."""
    graph = Graph.from_edges(
        num_leaves + 1, [(0, i) for i in range(1, num_leaves + 1)]
    )
    src = graph.arc_sources
    weights = np.maximum(src, graph.indices).astype(float)
    expected = np.arange(1, num_leaves + 1, dtype=float)
    return graph, weights, expected / expected.sum()


def test_alias_tables_encode_exact_probabilities(world):
    sampler = WeightedRandomWalkSampler(
        world.graph, world.arc_weights, next_hop="alias"
    )
    reconstructed = sampler._alias_tables.reconstructed_probabilities(
        world.graph.indptr
    )
    expected = world.arc_weights / np.repeat(
        sampler.strengths, world.graph.degrees()
    )
    np.testing.assert_allclose(reconstructed, expected, rtol=0, atol=1e-12)


@pytest.mark.parametrize("next_hop", ["search", "alias"])
def test_next_hop_frequencies_match_weights(next_hop):
    # On a star, every even-indexed draw is a leaf chosen from the
    # center's weighted distribution (odd draws return to the center).
    graph, weights, probs = _star_world()
    sampler = WeightedRandomWalkSampler(
        graph, weights, start=0, next_hop=next_hop
    )
    sample = sampler.sample(20_001, rng=0)
    leaves = sample.nodes[::2]
    counts = np.bincount(leaves, minlength=len(probs) + 1)[1:]
    expected = counts.sum() * probs
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    assert chi2 < _chi_square_bound(len(probs) - 1), (next_hop, chi2)


def test_batched_alias_frequencies_match_weights():
    graph, weights, probs = _star_world()
    sampler = WeightedRandomWalkSampler(graph, weights, start=0, next_hop="alias")
    batch = sampler.sample_many(2001, 12, rng=1)
    leaves = batch.nodes[:, ::2].ravel()
    counts = np.bincount(leaves, minlength=len(probs) + 1)[1:]
    expected = counts.sum() * probs
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    assert chi2 < _chi_square_bound(len(probs) - 1), chi2


def test_alias_and_search_agree_distributionally():
    # Same walk, same seed budget, different next-hop engines: the
    # empirical leaf distributions must agree within sampling noise
    # (two-sample chi-square).
    graph, weights, probs = _star_world()
    counts = {}
    for engine in ("search", "alias"):
        sampler = WeightedRandomWalkSampler(
            graph, weights, start=0, next_hop=engine
        )
        sample = sampler.sample(20_001, rng=7)
        counts[engine] = np.bincount(
            sample.nodes[::2], minlength=len(probs) + 1
        )[1:].astype(float)
    a, b = counts["search"], counts["alias"]
    pooled = (a + b) / (a.sum() + b.sum())
    chi2 = float(
        (((a - a.sum() * pooled) ** 2) / (a.sum() * pooled)).sum()
        + (((b - b.sum() * pooled) ** 2) / (b.sum() * pooled)).sum()
    )
    assert chi2 < _chi_square_bound(len(probs) - 1), chi2


def test_alias_weights_are_strengths(world):
    search = WeightedRandomWalkSampler(world.graph, world.arc_weights)
    alias = WeightedRandomWalkSampler(
        world.graph, world.arc_weights, next_hop="alias"
    )
    np.testing.assert_array_equal(search.strengths, alias.strengths)
    sample = alias.sample(300, rng=3)
    assert np.array_equal(sample.weights, alias.strengths[sample.nodes])


def test_bad_next_hop_rejected(world):
    from repro.exceptions import SamplingError

    with pytest.raises(SamplingError):
        WeightedRandomWalkSampler(
            world.graph, world.arc_weights, next_hop="magic"
        )


# ----------------------------------------------------------------------
# The registry itself
# ----------------------------------------------------------------------
class _CountingSampler(UniformIndependenceSampler):
    pass


class _CountingSubclass(_CountingSampler):
    pass


def test_register_kernel_dispatch_and_mro_inheritance(world):
    calls = []

    def kernel(sampler, n, streams):
        calls.append(len(streams))
        nodes = np.zeros((len(streams), n), dtype=np.int64)
        return nodes, np.ones_like(nodes, dtype=float)

    register_kernel(_CountingSampler, kernel)
    try:
        batch = _CountingSampler(world.graph).sample_many(10, 3, rng=0)
        assert calls == [3]
        assert np.all(batch.nodes == 0)
        # Subclasses inherit through the MRO...
        _CountingSubclass(world.graph).sample_many(10, 2, rng=0)
        assert calls == [3, 2]
        # ...and can override with an explicit fallback.
        register_kernel(_CountingSubclass, None)
        sub = _CountingSubclass(world.graph)
        assert registered_kernel(sub) is None
        sub.sample_many(10, 2, rng=0)
        assert calls == [3, 2]  # fallback, kernel not invoked
    finally:
        batch_module._KERNELS.pop(_CountingSampler, None)
        batch_module._KERNELS.pop(_CountingSubclass, None)


def test_register_kernel_as_decorator(world):
    @register_kernel(_CountingSampler)
    def kernel(sampler, n, streams):
        nodes = np.full((len(streams), n), 7, dtype=np.int64)
        return nodes, np.ones_like(nodes, dtype=float)

    try:
        batch = _CountingSampler(world.graph).sample_many(5, 2, rng=0)
        assert np.all(batch.nodes == 7)
    finally:
        batch_module._KERNELS.pop(_CountingSampler, None)


def test_every_shipped_design_is_registered(world):
    # Kernel or declared fallback — no design may be merely *unheard of*.
    for name, (factory, _) in DESIGNS.items():
        assert is_registered(type(factory(world))), name


class _UnheardOfSampler(Sampler):
    @property
    def design(self):
        return "unheard-of"

    @property
    def uniform(self):
        return True

    def sample(self, n, rng=None):
        raise NotImplementedError


def test_is_registered_distinguishes_fallback_from_unknown(world):
    # UIS has an explicit None registration; a direct Sampler subclass
    # outside the registry does not, even though both resolve to the
    # sequential fallback in sample_many. Registered ancestors count:
    # _CountingSampler inherits UIS's declared fallback through the MRO.
    uis = UniformIndependenceSampler(world.graph)
    assert registered_kernel(uis) is None
    assert is_registered(uis.__class__)
    assert is_registered(_CountingSampler)
    assert not is_registered(_UnheardOfSampler)


def test_register_kernel_rejects_non_sampler():
    from repro.exceptions import SamplingError

    with pytest.raises(SamplingError):
        register_kernel(int, None)
    with pytest.raises(SamplingError):
        register_kernel(_CountingSampler, "not callable")
    assert _CountingSampler not in batch_module._KERNELS


def _scalar_vose_reference(indptr, weights, strengths=None):
    """The pre-vectorization per-run two-stack Vose construction.

    Kept as the semantic reference for the vectorized builder: pairing
    order may differ (stacks vs queues), but both must encode exactly
    the probabilities ``w_j / strength(v)``.
    """
    from repro.sampling.alias import AliasTables

    indptr = np.asarray(indptr, dtype=np.int64)
    weights = np.asarray(weights, dtype=float)
    prob = np.ones(len(weights))
    alias = np.arange(len(weights), dtype=np.int64)
    for v in range(len(indptr) - 1):
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        d = hi - lo
        if d <= 1:
            continue
        total = (
            float(strengths[v])
            if strengths is not None
            else float(weights[lo:hi].sum())
        )
        scaled = (weights[lo:hi] * (d / total)).tolist()
        small = [j for j in range(d) if scaled[j] < 1.0]
        large = [j for j in range(d) if scaled[j] >= 1.0]
        while small and large:
            s = small.pop()
            big = large.pop()
            prob[lo + s] = scaled[s]
            alias[lo + s] = lo + big
            scaled[big] -= 1.0 - scaled[s]
            (small if scaled[big] < 1.0 else large).append(big)
    return AliasTables(prob=prob, alias=alias)


class TestVectorizedAliasConstruction:
    """The NumPy Vose pass against the scalar reference and the axioms."""

    def _random_csr(self, rng, num_runs=120, max_degree=17):
        degrees = rng.integers(0, max_degree, size=num_runs)
        indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
        weights = rng.random(int(indptr[-1])) * 9.5 + 0.5
        return indptr, weights

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_encodes_the_same_probabilities_as_the_scalar_pass(self, seed):
        from repro.sampling.alias import build_alias_tables

        rng = np.random.default_rng(seed)
        indptr, weights = self._random_csr(rng)
        vectorized = build_alias_tables(indptr, weights)
        reference = _scalar_vose_reference(indptr, weights)
        np.testing.assert_allclose(
            vectorized.reconstructed_probabilities(indptr),
            reference.reconstructed_probabilities(indptr),
            rtol=0,
            atol=1e-12,
        )

    def test_tables_are_structurally_valid(self):
        from repro.sampling.alias import build_alias_tables

        rng = np.random.default_rng(42)
        indptr, weights = self._random_csr(rng, num_runs=300)
        tables = build_alias_tables(indptr, weights)
        assert tables.prob.min() >= 0.0
        assert tables.prob.max() <= 1.0 + 1e-12
        degrees = np.diff(indptr)
        run_ids = np.repeat(np.arange(len(degrees)), degrees)
        # every alias points inside its own run (the gather never
        # crosses adjacency boundaries)
        assert np.all(tables.alias >= indptr[run_ids])
        assert np.all(tables.alias < indptr[run_ids + 1])
        # degree-0/1 runs keep the prob-1 self-alias default
        trivial = np.flatnonzero(degrees[run_ids] <= 1)
        assert np.all(tables.prob[trivial] == 1.0)
        assert np.all(tables.alias[trivial] == trivial)

    def test_uniform_weights_need_no_aliasing(self):
        from repro.sampling.alias import build_alias_tables

        graph = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        weights = np.ones(len(graph.indices))
        tables = build_alias_tables(graph.indptr, weights)
        np.testing.assert_array_equal(tables.prob, np.ones(len(weights)))

    def test_explicit_strengths_match_recomputed_totals(self, world):
        from repro.sampling.alias import build_alias_tables

        run_ids = np.repeat(
            np.arange(world.graph.num_nodes), world.graph.degrees()
        )
        strengths = np.bincount(
            run_ids, weights=world.arc_weights, minlength=world.graph.num_nodes
        )
        with_strengths = build_alias_tables(
            world.graph.indptr, world.arc_weights, strengths
        )
        exact = world.arc_weights / strengths[run_ids]
        np.testing.assert_allclose(
            with_strengths.reconstructed_probabilities(world.graph.indptr),
            exact,
            rtol=0,
            atol=1e-12,
        )


# ----------------------------------------------------------------------
# Storage-plane equivalence: memmap-backed graphs sample identically
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mapped_world(tmp_path_factory) -> World:
    """The same world as ``world``, built through the on-disk CSR plane."""
    from repro.graph.storage import graph_storage

    root = tmp_path_factory.mktemp("memmap-world")
    with graph_storage("memmap", directory=root):
        graph, partition = planted_category_graph(k=8, scale=40, rng=0)
        relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=1)
    arc_weights = np.abs(np.sin(np.arange(len(graph.indices)))) + 0.5
    return World(graph, partition, relation, arc_weights)


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_memmap_backed_world_samples_bit_equal(name, world, mapped_world):
    """Every design draws the same bytes from disk-mapped planes.

    The storage plane's contract is that a memmap-backed CSR is
    indistinguishable from the in-RAM build; a shared seed must
    therefore produce identical trajectories on both.
    """
    factory, _ = DESIGNS[name]
    assert np.array_equal(
        np.asarray(mapped_world.graph.indptr), np.asarray(world.graph.indptr)
    )
    assert np.array_equal(
        np.asarray(mapped_world.graph.indices), np.asarray(world.graph.indices)
    )
    n, replications, seed = 120, 3, sum(map(ord, name)) % 1000
    ram = factory(world).sample_many(n, replications, rng=seed)
    mapped = factory(mapped_world).sample_many(n, replications, rng=seed)
    for r in range(replications):
        assert np.array_equal(
            ram.replicate(r).nodes, mapped.replicate(r).nodes
        ), f"{name}: memmap trajectory diverged in replicate {r}"
        assert np.array_equal(
            ram.replicate(r).weights, mapped.replicate(r).weights
        ), f"{name}: memmap weights diverged in replicate {r}"


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_plane_store_backed_world_samples_bit_equal(
    name, world, mapped_world, monkeypatch
):
    """Derived planes spilled through the manifest-keyed store are
    indistinguishable from their in-RAM twins: with every derivation
    forced out of core (``REPRO_PLANE_THRESHOLD=0``), a shared seed
    draws the same trajectories — cold (planes built chunk by chunk)
    and warm (planes reopened from a prior commit)."""
    from repro.graph.planes import clear_plane_memo

    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    factory, _ = DESIGNS[name]
    n, replications, seed = 120, 3, sum(map(ord, name)) % 1000
    ram = factory(world).sample_many(n, replications, rng=seed)
    cold = factory(mapped_world).sample_many(n, replications, rng=seed)
    clear_plane_memo()
    warm = factory(mapped_world).sample_many(n, replications, rng=seed)
    for r in range(replications):
        for phase, got in (("cold", cold), ("warm", warm)):
            assert np.array_equal(
                ram.replicate(r).nodes, got.replicate(r).nodes
            ), f"{name}: {phase} plane-store trajectory diverged in replicate {r}"
            assert np.array_equal(
                ram.replicate(r).weights, got.replicate(r).weights
            ), f"{name}: {phase} plane-store weights diverged in replicate {r}"
