"""Tests for merging star observations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import estimate_sizes_star, estimate_weights_star
from repro.exceptions import SamplingError
from repro.generators import planted_category_graph
from repro.graph import true_category_graph
from repro.sampling import RandomWalkSampler, UniformIndependenceSampler, observe_star
from repro.sampling.merge import merge_star_observations


@pytest.fixture(scope="module")
def setup():
    graph, partition = planted_category_graph(k=8, scale=80, rng=0)
    return graph, partition, true_category_graph(graph, partition)


class TestMergeStarObservations:
    def test_merge_equals_concat_then_observe(self, setup):
        graph, partition, truth = setup
        s1 = RandomWalkSampler(graph).sample(1000, rng=1)
        s2 = RandomWalkSampler(graph).sample(1000, rng=2)
        merged_obs = merge_star_observations([
            observe_star(graph, partition, s1),
            observe_star(graph, partition, s2),
        ])
        direct_obs = observe_star(graph, partition, s1.concat(s2))
        # Same estimates either way.
        a = estimate_sizes_star(merged_obs, graph.num_nodes)
        b = estimate_sizes_star(direct_obs, graph.num_nodes)
        assert np.allclose(a, b, equal_nan=True)
        wa = estimate_weights_star(merged_obs, truth.sizes)
        wb = estimate_weights_star(direct_obs, truth.sizes)
        assert np.allclose(wa, wb, equal_nan=True)

    def test_draw_count_adds(self, setup):
        graph, partition, _ = setup
        obs = [
            observe_star(
                graph, partition,
                RandomWalkSampler(graph).sample(500, rng=seed),
            )
            for seed in range(3)
        ]
        merged = merge_star_observations(obs)
        assert merged.num_draws == 1500
        assert int(merged.distinct_multiplicities.sum()) == 1500

    def test_single_observation_passthrough(self, setup):
        graph, partition, _ = setup
        obs = observe_star(
            graph, partition, RandomWalkSampler(graph).sample(100, rng=0)
        )
        assert merge_star_observations([obs]) is obs

    def test_empty_list_rejected(self):
        with pytest.raises(SamplingError):
            merge_star_observations([])

    def test_design_mismatch_rejected(self, setup):
        graph, partition, _ = setup
        rw = observe_star(
            graph, partition, RandomWalkSampler(graph).sample(100, rng=0)
        )
        uis = observe_star(
            graph, partition, UniformIndependenceSampler(graph).sample(100, rng=0)
        )
        with pytest.raises(SamplingError, match="designs"):
            merge_star_observations([rw, uis])

    def test_category_set_mismatch_rejected(self, setup):
        graph, partition, _ = setup
        other = partition.keep_top(3)
        a = observe_star(
            graph, partition, RandomWalkSampler(graph).sample(50, rng=0)
        )
        b = observe_star(
            graph, other, RandomWalkSampler(graph).sample(50, rng=1)
        )
        with pytest.raises(SamplingError, match="category set"):
            merge_star_observations([a, b])

    def test_induced_rejected(self, setup):
        from repro.sampling import observe_induced

        graph, partition, _ = setup
        obs = observe_induced(
            graph, partition, RandomWalkSampler(graph).sample(50, rng=0)
        )
        with pytest.raises(SamplingError, match="StarObservation"):
            merge_star_observations([obs, obs])
