"""Tests for the multigraph random-walk sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.generators import gnm
from repro.graph import Graph
from repro.sampling import MultigraphRandomWalkSampler


class TestMultigraphWalk:
    def test_total_degree_stationarity(self):
        a = gnm(150, 600, rng=0)
        b = gnm(150, 300, rng=1)
        sampler = MultigraphRandomWalkSampler([a, b])
        sample = sampler.sample(150_000, rng=2)
        counts = np.bincount(sample.nodes, minlength=150)
        target = (a.degrees() + b.degrees()).astype(float)
        expected = 150_000 * target / target.sum()
        assert np.all(np.abs(counts - expected) < 8 * np.sqrt(expected + 1))

    def test_weights_are_total_degrees(self):
        a = gnm(50, 200, rng=0)
        b = gnm(50, 100, rng=1)
        sampler = MultigraphRandomWalkSampler([a, b])
        sample = sampler.sample(100, rng=0)
        total = a.degrees() + b.degrees()
        assert np.array_equal(sample.weights, total[sample.nodes])

    def test_escapes_single_relation_components(self):
        # Relation 1 connects {0,1,2}, relation 2 connects {2,3,4}:
        # neither alone reaches all nodes from node 0, the union does.
        r1 = Graph.from_edges(5, [(0, 1), (1, 2)])
        r2 = Graph.from_edges(5, [(2, 3), (3, 4)])
        sampler = MultigraphRandomWalkSampler([r1, r2], start=0)
        sample = sampler.sample(3000, rng=3)
        assert len(np.unique(sample.nodes)) == 5

    def test_parallel_edges_double_traversal(self):
        # The same edge in both relations is traversed twice as often
        # as a single-relation edge from the same node.
        shared = Graph.from_edges(3, [(0, 1)])
        shared2 = Graph.from_edges(3, [(0, 1), (0, 2)])
        sampler = MultigraphRandomWalkSampler([shared, shared2], start=0)
        sample = sampler.sample(60_000, rng=4)
        # From node 0: stubs toward 1 = 2, toward 2 = 1. Node 1 only
        # connects back to 0; node 2 only back to 0. Visits of 1 vs 2
        # should be ~2:1.
        visits = np.bincount(sample.nodes, minlength=3)
        assert 1.7 < visits[1] / visits[2] < 2.3

    def test_single_relation_matches_rw(self):
        g = gnm(100, 400, rng=5)
        sampler = MultigraphRandomWalkSampler([g])
        sample = sampler.sample(1000, rng=6)
        previous = sample.nodes[0]
        for node in sample.nodes[1:]:
            assert g.has_edge(int(previous), int(node))
            previous = node

    def test_mismatched_node_sets_rejected(self):
        with pytest.raises(SamplingError):
            MultigraphRandomWalkSampler([gnm(10, 20, rng=0), gnm(11, 20, rng=0)])

    def test_empty_union_rejected(self):
        with pytest.raises(SamplingError):
            MultigraphRandomWalkSampler([Graph.empty(5), Graph.empty(5)])

    def test_no_relations_rejected(self):
        with pytest.raises(SamplingError):
            MultigraphRandomWalkSampler([])

    def test_bad_start_rejected(self):
        with pytest.raises(SamplingError):
            MultigraphRandomWalkSampler([gnm(10, 20, rng=0)], start=99)

    def test_design_name(self):
        sampler = MultigraphRandomWalkSampler([gnm(10, 20, rng=0)])
        assert sampler.design == "multigraph-rw"
        assert not sampler.uniform
