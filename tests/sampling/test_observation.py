"""Tests for the induced/star measurement scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.sampling import (
    NodeSample,
    observe_induced,
    observe_star,
)


def _uniform_sample(nodes) -> NodeSample:
    nodes = np.asarray(nodes, dtype=np.int64)
    return NodeSample(nodes, np.ones(len(nodes)), design="uis", uniform=True)


class TestCompression:
    def test_distinct_table(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 5, 0, 3]))
        assert obs.num_draws == 4
        assert obs.num_distinct == 3
        assert list(obs.distinct_nodes) == [0, 3, 5]
        assert list(obs.distinct_multiplicities) == [2, 1, 1]
        # draw order is preserved through draw_to_distinct
        reconstructed = obs.distinct_nodes[obs.draw_to_distinct]
        assert list(reconstructed) == [0, 5, 0, 3]

    def test_category_draw_counts(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 5, 0, 3]))
        counts = obs.category_draw_counts()
        assert counts[partition.index_of("white")] == 2
        assert counts[partition.index_of("gray")] == 1
        assert counts[partition.index_of("black")] == 1

    def test_reweighted_equals_counts_when_uniform(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 5, 0, 3]))
        assert np.allclose(obs.reweighted_sizes(), obs.category_draw_counts())

    def test_weighted_reweighting(self, paper_figure1):
        graph, partition = paper_figure1
        sample = NodeSample(
            np.array([0, 5]), np.array([4.0, 2.0]), design="rw", uniform=False
        )
        obs = observe_induced(graph, partition, sample)
        rw = obs.reweighted_sizes()
        assert rw[partition.index_of("white")] == pytest.approx(0.25)
        assert rw[partition.index_of("black")] == pytest.approx(0.5)

    def test_inconsistent_weights_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        sample = NodeSample(
            np.array([0, 0]), np.array([1.0, 2.0]), design="rw", uniform=False
        )
        with pytest.raises(SamplingError, match="differ"):
            observe_induced(graph, partition, sample)

    def test_empty_sample_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        with pytest.raises(SamplingError):
            observe_induced(
                graph,
                partition,
                NodeSample(np.empty(0, dtype=np.int64), np.empty(0)),
            )

    def test_out_of_range_sample_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        with pytest.raises(SamplingError):
            observe_induced(graph, partition, _uniform_sample([999]))


class TestInducedObservation:
    def test_only_induced_edges_observed(self, paper_figure1):
        graph, partition = paper_figure1
        # 0-5 is an edge; 0-3 is an edge; 3-5 is not; 5-6 not sampled.
        obs = observe_induced(graph, partition, _uniform_sample([0, 3, 5]))
        edge_set = {
            (int(obs.distinct_nodes[i]), int(obs.distinct_nodes[j]))
            for i, j in obs.induced_edges
        }
        assert edge_set == {(0, 3), (0, 5)}

    def test_no_edges_when_sample_is_independent_set(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 7]))
        assert len(obs.induced_edges) == 0

    def test_full_census_sees_all_edges(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(
            graph, partition, _uniform_sample(np.arange(graph.num_nodes))
        )
        assert len(obs.induced_edges) == graph.num_edges

    def test_subset_draws(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 3, 5, 7]))
        sub = obs.subset_draws(np.array([0, 1]))  # keep draws of 0 and 3
        assert sub.num_draws == 2
        assert sub.num_distinct == 2
        edge_set = {
            (int(sub.distinct_nodes[i]), int(sub.distinct_nodes[j]))
            for i, j in sub.induced_edges
        }
        assert edge_set == {(0, 3)}

    def test_subset_with_repeats(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 3]))
        sub = obs.subset_draws(np.array([0, 0, 1]))
        assert sub.num_draws == 3
        assert list(sub.distinct_multiplicities) == [2, 1]

    def test_subset_empty_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0]))
        with pytest.raises(SamplingError):
            obs.subset_draws(np.empty(0, dtype=np.int64))

    def test_subset_out_of_range_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0]))
        with pytest.raises(SamplingError):
            obs.subset_draws(np.array([5]))


class TestStarObservation:
    def test_degrees_recorded(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0, 4]))
        degree_of = dict(zip(obs.distinct_nodes.tolist(), obs.distinct_degrees.tolist()))
        assert degree_of[0] == graph.degree(0)
        assert degree_of[4] == graph.degree(4)

    def test_neighbor_category_histogram(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0]))
        # node 0 neighbors: 1 (white), 3 (gray), 5 (black)
        row = {}
        for pos in range(obs.neighbor_indptr[0], obs.neighbor_indptr[1]):
            row[int(obs.neighbor_categories[pos])] = int(obs.neighbor_counts[pos])
        white = partition.index_of("white")
        gray = partition.index_of("gray")
        black = partition.index_of("black")
        assert row == {white: 1, gray: 1, black: 1}

    def test_neighbor_matrix_unweighted_totals(self, paper_figure1):
        graph, partition = paper_figure1
        sample = _uniform_sample([0, 4, 0])  # node 0 drawn twice
        obs = observe_star(graph, partition, sample)
        matrix = obs.neighbor_category_matrix(weighted=False)
        # total neighbor count = sum of degrees over draws (vol of multiset)
        assert matrix.sum() == graph.degree(0) * 2 + graph.degree(4)

    def test_neighbor_matrix_weighted(self, paper_figure1):
        graph, partition = paper_figure1
        sample = NodeSample(
            np.array([0]), np.array([2.0]), design="rw", uniform=False
        )
        obs = observe_star(graph, partition, sample)
        unweighted = obs.neighbor_category_matrix(weighted=False)
        weighted = obs.neighbor_category_matrix(weighted=True)
        assert np.allclose(weighted, unweighted / 2.0)

    def test_degree_totals(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0, 4]))
        totals = obs.degree_totals(weighted=False)
        white = partition.index_of("white")
        gray = partition.index_of("gray")
        assert totals[white] == graph.degree(0)
        assert totals[gray] == graph.degree(4)

    def test_subset_draws_star(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0, 4, 6]))
        sub = obs.subset_draws(np.array([2, 2]))
        assert sub.num_draws == 2
        assert sub.num_distinct == 1
        assert int(sub.distinct_nodes[0]) == 6
        assert sub.distinct_degrees[0] == graph.degree(6)
        matrix = sub.neighbor_category_matrix(weighted=False)
        assert matrix.sum() == 2 * graph.degree(6)

    def test_isolated_node_star(self):
        from repro.graph import CategoryPartition, Graph

        g = Graph.from_edges(3, [(0, 1)])
        p = CategoryPartition(np.array([0, 0, 1]))
        obs = observe_star(g, p, _uniform_sample([2]))
        assert obs.distinct_degrees[0] == 0
        assert obs.neighbor_category_matrix(weighted=False).sum() == 0
