"""Statistical and structural tests for the sampling designs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.generators import gnm, planted_category_graph
from repro.graph import CategoryPartition, Graph
from repro.sampling import (
    BreadthFirstSampler,
    ForestFireSampler,
    MetropolisHastingsSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    StratifiedWeightedWalkSampler,
    UniformIndependenceSampler,
    WeightedIndependenceSampler,
    WeightedRandomWalkSampler,
)


@pytest.fixture(scope="module")
def medium_graph() -> Graph:
    """A connected random graph for walk statistics."""
    g = gnm(300, 1800, rng=0)
    from repro.graph import is_connected

    assert is_connected(g)
    return g


class TestUis:
    def test_nodes_in_range_and_uniform_flag(self, medium_graph):
        s = UniformIndependenceSampler(medium_graph).sample(5000, rng=0)
        assert s.uniform
        assert s.nodes.min() >= 0
        assert s.nodes.max() < medium_graph.num_nodes
        assert np.all(s.weights == 1.0)

    def test_approximately_uniform(self, medium_graph):
        s = UniformIndependenceSampler(medium_graph).sample(60_000, rng=1)
        counts = np.bincount(s.nodes, minlength=medium_graph.num_nodes)
        expected = 60_000 / medium_graph.num_nodes
        # chi-square-ish sanity: all counts within 6 sigma
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))

    def test_empty_graph_rejected(self):
        with pytest.raises(SamplingError):
            UniformIndependenceSampler(Graph.empty(0))

    def test_bad_size(self, medium_graph):
        with pytest.raises(SamplingError):
            UniformIndependenceSampler(medium_graph).sample(0)

    def test_reproducible(self, medium_graph):
        s1 = UniformIndependenceSampler(medium_graph).sample(100, rng=5)
        s2 = UniformIndependenceSampler(medium_graph).sample(100, rng=5)
        assert np.array_equal(s1.nodes, s2.nodes)


class TestWis:
    def test_degree_weighted_frequencies(self, medium_graph):
        s = WeightedIndependenceSampler(medium_graph).sample(100_000, rng=2)
        counts = np.bincount(s.nodes, minlength=medium_graph.num_nodes)
        degrees = medium_graph.degrees()
        expected = 100_000 * degrees / degrees.sum()
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected + 1))

    def test_weights_attached(self, medium_graph):
        s = WeightedIndependenceSampler(medium_graph).sample(50, rng=0)
        assert np.array_equal(s.weights, medium_graph.degrees()[s.nodes])

    def test_custom_weights(self, medium_graph):
        w = np.ones(medium_graph.num_nodes)
        w[:10] = 100.0
        s = WeightedIndependenceSampler(medium_graph, weights=w).sample(
            20_000, rng=3
        )
        fraction_low_ids = np.mean(s.nodes < 10)
        assert fraction_low_ids > 0.5  # 1000 vs 290 total weight

    def test_bad_weight_spec(self, medium_graph):
        with pytest.raises(SamplingError):
            WeightedIndependenceSampler(medium_graph, weights="banana")

    def test_wrong_shape_weights(self, medium_graph):
        with pytest.raises(SamplingError):
            WeightedIndependenceSampler(medium_graph, weights=np.ones(3))

    def test_nonpositive_weights(self, medium_graph):
        w = np.ones(medium_graph.num_nodes)
        w[0] = 0
        with pytest.raises(SamplingError):
            WeightedIndependenceSampler(medium_graph, weights=w)

    def test_isolated_node_degree_weights_rejected(self):
        g = Graph.from_edges(3, [(0, 1)])  # node 2 isolated
        with pytest.raises(SamplingError, match="isolated"):
            WeightedIndependenceSampler(g)


class TestRandomWalk:
    def test_steps_follow_edges(self, medium_graph):
        s = RandomWalkSampler(medium_graph, start=0).sample(500, rng=0)
        previous = 0
        for node in s.nodes:
            assert medium_graph.has_edge(previous, int(node))
            previous = int(node)

    def test_degree_proportional_visits(self, medium_graph):
        s = RandomWalkSampler(medium_graph).sample(200_000, rng=4)
        counts = np.bincount(s.nodes, minlength=medium_graph.num_nodes)
        degrees = medium_graph.degrees()
        expected = 200_000 * degrees / degrees.sum()
        # Correlated draws: allow a loose 8-sigma band.
        assert np.all(np.abs(counts - expected) < 8 * np.sqrt(expected + 1))

    def test_weights_are_degrees(self, medium_graph):
        s = RandomWalkSampler(medium_graph).sample(100, rng=0)
        assert np.array_equal(s.weights, medium_graph.degrees()[s.nodes])

    def test_burn_in_discards(self, medium_graph):
        s = RandomWalkSampler(medium_graph, start=0, burn_in=10).sample(50, rng=0)
        assert s.size == 50

    def test_invalid_start(self, medium_graph):
        with pytest.raises(SamplingError):
            RandomWalkSampler(medium_graph, start=10_000)

    def test_negative_burn_in(self, medium_graph):
        with pytest.raises(SamplingError):
            RandomWalkSampler(medium_graph, burn_in=-1)

    def test_edgeless_graph_rejected(self):
        with pytest.raises(SamplingError):
            RandomWalkSampler(Graph.empty(5))


class TestMhrw:
    def test_uniform_flag_and_weights(self, medium_graph):
        s = MetropolisHastingsSampler(medium_graph).sample(100, rng=0)
        assert s.uniform
        assert np.all(s.weights == 1.0)

    def test_asymptotically_uniform(self, medium_graph):
        s = MetropolisHastingsSampler(medium_graph).sample(300_000, rng=5)
        counts = np.bincount(s.nodes, minlength=medium_graph.num_nodes)
        expected = 300_000 / medium_graph.num_nodes
        # MHRW mixes slowly; generous tolerance on the extremes.
        assert abs(counts.mean() - expected) < 1e-9
        assert counts.min() > 0.3 * expected
        assert counts.max() < 3.0 * expected

    def test_rejections_repeat_nodes(self, medium_graph):
        s = MetropolisHastingsSampler(medium_graph).sample(5000, rng=6)
        repeats = np.sum(s.nodes[1:] == s.nodes[:-1])
        assert repeats > 0  # rejections must occur on a non-regular graph


class TestWeightedWalk:
    def test_unit_weights_match_rw_distribution(self, medium_graph):
        arc_weights = np.ones(len(medium_graph.indices))
        s = WeightedRandomWalkSampler(medium_graph, arc_weights).sample(
            100_000, rng=7
        )
        counts = np.bincount(s.nodes, minlength=medium_graph.num_nodes)
        degrees = medium_graph.degrees()
        expected = 100_000 * degrees / degrees.sum()
        assert np.all(np.abs(counts - expected) < 8 * np.sqrt(expected + 1))

    def test_strength_weights_attached(self, medium_graph):
        arc_weights = np.full(len(medium_graph.indices), 2.0)
        sampler = WeightedRandomWalkSampler(medium_graph, arc_weights)
        s = sampler.sample(100, rng=0)
        assert np.allclose(s.weights, 2.0 * medium_graph.degrees()[s.nodes])

    def test_wrong_shape_rejected(self, medium_graph):
        with pytest.raises(SamplingError):
            WeightedRandomWalkSampler(medium_graph, np.ones(3))

    def test_nonpositive_arc_weights_rejected(self, medium_graph):
        w = np.ones(len(medium_graph.indices))
        w[0] = 0.0
        with pytest.raises(SamplingError):
            WeightedRandomWalkSampler(medium_graph, w)


class TestRwWithJumps:
    def test_stationary_degree_plus_alpha(self, medium_graph):
        alpha = 5.0
        s = RandomWalkWithJumpsSampler(medium_graph, alpha=alpha).sample(
            200_000, rng=8
        )
        counts = np.bincount(s.nodes, minlength=medium_graph.num_nodes)
        target = medium_graph.degrees() + alpha
        expected = 200_000 * target / target.sum()
        assert np.all(np.abs(counts - expected) < 8 * np.sqrt(expected))

    def test_weights(self, medium_graph):
        s = RandomWalkWithJumpsSampler(medium_graph, alpha=3.0).sample(100, rng=0)
        assert np.allclose(s.weights, medium_graph.degrees()[s.nodes] + 3.0)

    def test_escapes_components(self):
        # Two disconnected cliques: jumps must reach both.
        g = Graph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        s = RandomWalkWithJumpsSampler(g, alpha=2.0, start=0).sample(5000, rng=9)
        assert len(np.unique(s.nodes)) == 6

    def test_invalid_alpha(self, medium_graph):
        with pytest.raises(SamplingError):
            RandomWalkWithJumpsSampler(medium_graph, alpha=0.0)


class TestStratified:
    def test_oversamples_small_categories(self):
        g, p = planted_category_graph(k=8, scale=40, rng=0)
        uis_counts = _category_counts(
            UniformIndependenceSampler(g).sample(20_000, rng=1), p
        )
        swrw_counts = _category_counts(
            StratifiedWeightedWalkSampler(g, p).sample(20_000, rng=1), p
        )
        smallest = int(np.argmin(p.sizes()))
        largest = int(np.argmax(p.sizes()))
        # S-WRW must boost the smallest category relative to UIS...
        assert swrw_counts[smallest] > 3 * max(uis_counts[smallest], 1)
        # ...and shrink the share of the largest.
        assert swrw_counts[largest] < uis_counts[largest]

    def test_gamma_zero_degenerates_to_rw(self):
        g, p = planted_category_graph(k=8, scale=40, rng=0)
        sampler = StratifiedWeightedWalkSampler(g, p, gamma=0.0)
        s = sampler.sample(2000, rng=2)
        # omega == 1 for all nodes: strengths equal degrees.
        assert np.allclose(s.weights, g.degrees()[s.nodes])

    def test_design_name(self):
        g, p = planted_category_graph(k=8, scale=40, rng=0)
        s = StratifiedWeightedWalkSampler(g, p).sample(10, rng=0)
        assert s.design == "swrw"

    def test_partition_mismatch(self):
        g, _ = planted_category_graph(k=8, scale=40, rng=0)
        bad = CategoryPartition(np.array([0, 1]))
        with pytest.raises(SamplingError):
            StratifiedWeightedWalkSampler(g, bad)

    def test_invalid_gamma(self):
        g, p = planted_category_graph(k=8, scale=40, rng=0)
        with pytest.raises(SamplingError):
            StratifiedWeightedWalkSampler(g, p, gamma=2.0)

    def test_bad_category_weights(self):
        g, p = planted_category_graph(k=8, scale=40, rng=0)
        with pytest.raises(SamplingError):
            StratifiedWeightedWalkSampler(
                g, p, category_weights=np.zeros(p.num_categories)
            )


class TestTraversal:
    def test_bfs_distinct_and_local(self, medium_graph):
        s = BreadthFirstSampler(medium_graph, seed_node=0).sample(50, rng=0)
        assert s.num_distinct() == 50
        assert not s.uniform

    def test_bfs_order_is_breadth_first(self):
        g = Graph.from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)])
        s = BreadthFirstSampler(g, seed_node=0).sample(7, rng=0)
        depth = {0: 0, 1: 1, 2: 1, 3: 2, 4: 2, 5: 2, 6: 2}
        depths = [depth[int(v)] for v in s.nodes]
        assert depths == sorted(depths)

    def test_bfs_too_many_rejected(self, medium_graph):
        with pytest.raises(SamplingError):
            BreadthFirstSampler(medium_graph).sample(
                medium_graph.num_nodes + 1
            )

    def test_bfs_multi_seed_on_disconnected(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3)])
        s = BreadthFirstSampler(g, seed_node=0).sample(6, rng=0)
        assert s.num_distinct() == 6

    def test_forest_fire_distinct(self, medium_graph):
        s = ForestFireSampler(medium_graph).sample(100, rng=0)
        assert s.num_distinct() == 100

    def test_forest_fire_invalid_prob(self, medium_graph):
        with pytest.raises(SamplingError):
            ForestFireSampler(medium_graph, forward_prob=1.0)

    def test_forest_fire_too_many(self, medium_graph):
        with pytest.raises(SamplingError):
            ForestFireSampler(medium_graph).sample(10_000)


def _category_counts(sample, partition) -> np.ndarray:
    counts = np.zeros(partition.num_categories, dtype=np.int64)
    np.add.at(counts, partition.labels[sample.nodes], 1)
    return counts
