"""Property-based tests (hypothesis) for samplers and observations."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CategoryPartition, Graph, union_csr
from repro.sampling import (
    BatchNodeSample,
    BreadthFirstSampler,
    MetropolisHastingsSampler,
    NodeSample,
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
    observe_star,
)


@st.composite
def connected_graphs(draw, max_nodes: int = 25):
    """Small connected graphs: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(0, v)), v) for v in range(1, n)]  # tree
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            edges.append((u, v))
    return Graph.from_edges(n, np.asarray(edges, dtype=np.int64))


@st.composite
def graph_with_partition(draw):
    graph = draw(connected_graphs())
    k = draw(st.integers(min_value=1, max_value=4))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=k - 1),
            min_size=graph.num_nodes,
            max_size=graph.num_nodes,
        )
    )
    return graph, CategoryPartition(np.asarray(labels), num_categories=k)


@given(connected_graphs(), st.integers(min_value=1, max_value=200),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_uis_draws_valid_nodes(graph, n, seed):
    sample = UniformIndependenceSampler(graph).sample(n, rng=seed)
    assert sample.size == n
    assert sample.nodes.min() >= 0
    assert sample.nodes.max() < graph.num_nodes
    assert np.all(sample.weights == 1.0)


@given(connected_graphs(), st.integers(min_value=2, max_value=200),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_rw_steps_follow_edges(graph, n, seed):
    sample = RandomWalkSampler(graph, start=0).sample(n, rng=seed)
    previous = 0
    for node in sample.nodes:
        assert graph.has_edge(previous, int(node))
        previous = int(node)
    assert np.array_equal(sample.weights, graph.degrees()[sample.nodes])


@given(connected_graphs(), st.integers(min_value=2, max_value=200),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_mhrw_moves_along_edges_or_stays(graph, n, seed):
    sample = MetropolisHastingsSampler(graph, start=0).sample(n, rng=seed)
    previous = 0
    for node in sample.nodes:
        node = int(node)
        assert node == previous or graph.has_edge(previous, node)
        previous = node


@given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_bfs_collects_distinct_nodes(graph, seed):
    n = graph.num_nodes
    sample = BreadthFirstSampler(graph).sample(n, rng=seed)
    assert sorted(sample.nodes.tolist()) == list(range(n))


@given(graph_with_partition(), st.integers(min_value=1, max_value=60),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_observation_bookkeeping_consistent(case, n, seed):
    graph, partition = case
    sample = UniformIndependenceSampler(graph).sample(n, rng=seed)
    induced = observe_induced(graph, partition, sample)
    star = observe_star(graph, partition, sample)
    # Draw counts agree between scenarios and with the sample.
    assert induced.num_draws == star.num_draws == n
    assert int(induced.distinct_multiplicities.sum()) == n
    assert np.array_equal(induced.distinct_nodes, star.distinct_nodes)
    # Category draw counts sum to n.
    assert int(induced.category_draw_counts().sum()) == n
    # Star degree bookkeeping matches the graph.
    assert np.array_equal(
        star.distinct_degrees, graph.degrees()[star.distinct_nodes]
    )
    # Neighbor histogram row sums equal degrees.
    for i in range(star.num_distinct):
        row_total = star.neighbor_counts[
            star.neighbor_indptr[i] : star.neighbor_indptr[i + 1]
        ].sum()
        assert row_total == star.distinct_degrees[i]


@given(graph_with_partition(), st.integers(min_value=2, max_value=60),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_induced_edges_are_real_edges(case, n, seed):
    graph, partition = case
    sample = UniformIndependenceSampler(graph).sample(n, rng=seed)
    obs = observe_induced(graph, partition, sample)
    for i, j in obs.induced_edges:
        u = int(obs.distinct_nodes[i])
        v = int(obs.distinct_nodes[j])
        assert graph.has_edge(u, v)
    # Completeness: every graph edge with both endpoints sampled appears.
    sampled = set(obs.distinct_nodes.tolist())
    expected = sum(
        1 for u, v in graph.edges() if u in sampled and v in sampled
    )
    assert len(obs.induced_edges) == expected


@given(graph_with_partition(), st.integers(min_value=2, max_value=40),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_subset_of_all_draws_is_identity(case, n, seed):
    graph, partition = case
    sample = UniformIndependenceSampler(graph).sample(n, rng=seed)
    for observe in (observe_induced, observe_star):
        obs = observe(graph, partition, sample)
        same = obs.subset_draws(np.arange(n))
        assert same.num_draws == obs.num_draws
        assert np.array_equal(same.distinct_nodes, obs.distinct_nodes)
        assert np.array_equal(
            same.distinct_multiplicities, obs.distinct_multiplicities
        )


@given(st.integers(min_value=1, max_value=50),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=30, deadline=None)
def test_thin_then_size(n, period):
    sample = NodeSample(np.arange(n), np.ones(n), design="uis", uniform=True)
    thinned = sample.thin(period)
    assert thinned.size == len(range(0, n, period))


# ----------------------------------------------------------------------
# BatchNodeSample view invariants
# ----------------------------------------------------------------------
@st.composite
def batches(draw):
    r = draw(st.integers(min_value=1, max_value=6))
    n = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    nodes = rng.integers(0, 100, size=(r, n), dtype=np.int64)
    weights = rng.random((r, n)) + 0.5
    return BatchNodeSample(nodes, weights, design="test", uniform=False)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_batch_replicate_slicing_round_trips(batch):
    # Restacking the per-replicate views reproduces the matrices bit
    # for bit, and every view aliases (not copies) the batch storage.
    reps = batch.replicates()
    assert len(reps) == batch.num_replicates == len(batch)
    assert np.array_equal(np.stack([s.nodes for s in reps]), batch.nodes)
    assert np.array_equal(np.stack([s.weights for s in reps]), batch.weights)
    for r, rep in enumerate(batch):
        assert rep.size == batch.draws_per_replicate
        assert np.shares_memory(rep.nodes, batch.nodes)
        assert np.shares_memory(rep.weights, batch.weights)
        assert np.array_equal(rep.nodes, batch.nodes[r])


@given(batches())
@settings(max_examples=40, deadline=None)
def test_batch_shape_invariants(batch):
    assert batch.nodes.shape == batch.weights.shape
    assert batch.nodes.shape == (
        batch.num_replicates,
        batch.draws_per_replicate,
    )
    assert batch.nodes.dtype == np.int64
    assert batch.weights.dtype == float
    # Rows are C-contiguous so replicate views cost O(1) memory.
    assert batch.nodes[0].flags.c_contiguous
    assert all(s.design == batch.design for s in batch)


# ----------------------------------------------------------------------
# Union-CSR invariants
# ----------------------------------------------------------------------
@st.composite
def relation_sets(draw, max_nodes: int = 20):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    num_relations = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(num_relations):
        m = int(rng.integers(0, 2 * n))
        edges = []
        for _ in range(m):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v:
                edges.append((u, v))
        graphs.append(
            Graph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        )
    return tuple(graphs)


@given(relation_sets())
@settings(max_examples=40, deadline=None)
def test_union_degree_sums_equal_relation_degree_sums(graphs):
    union = union_csr(graphs)
    assert np.array_equal(
        union.total_degrees, sum(g.degrees() for g in graphs)
    )
    assert np.array_equal(np.diff(union.indptr), union.total_degrees)
    assert union.num_arcs == sum(len(g.indices) for g in graphs)


@given(relation_sets())
@settings(max_examples=40, deadline=None)
def test_union_arc_multiplicities_symmetric(graphs):
    union = union_csr(graphs)
    arcs, counts = union.arc_multiplicities()
    table = {(int(u), int(v)): int(c) for (u, v), c in zip(arcs, counts)}
    assert all(table[(v, u)] == c for (u, v), c in table.items())
    # Multiplicity of (u, v) is the number of relations with that edge.
    for (u, v), c in table.items():
        assert c == sum(g.has_edge(u, v) for g in graphs)
