"""Batched traversal kernels (BFS / Forest Fire) vs their sequential twins.

The cross-design harness in ``test_equivalence.py`` already holds both
kernels to replicate-wise bit-equality on a well-connected world; this
module pins the awkward corners — disconnected substrates (restart
cascades, early frontier exhaustion, full-graph budgets), fixed BFS
seeds, memmap-backed visited bitmaps, variate-window independence — and
adds the without-replacement property tests.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph.storage import graph_storage
from repro.rng import ensure_rng, spawn_rngs
from repro.sampling import BreadthFirstSampler, ForestFireSampler
from repro.sampling.batch import sample_streams
from repro.sampling.traversal import _FF_DRAW_HORIZON


def _assert_batched_matches_twins(sampler, n, replications, seed):
    streams = spawn_rngs(ensure_rng(seed), replications)
    batched = sample_streams(sampler, n, streams, engine="batched")
    twins = spawn_rngs(ensure_rng(seed), replications)
    for r, stream in enumerate(twins):
        reference = sampler.sample(n, rng=stream)
        assert np.array_equal(batched.nodes[r], reference.nodes), (
            f"{sampler.design}: replicate {r} diverged from its twin"
        )
    return batched


def _disconnected_graph() -> Graph:
    """Four components: a triangle, a path, one edge, an isolated node."""
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (6, 7)]
    return Graph.from_edges(9, edges)


DESIGNS = {
    "bfs": lambda g: BreadthFirstSampler(g),
    "forest_fire": lambda g: ForestFireSampler(g),
}


# ----------------------------------------------------------------------
# Early budget exhaustion on disconnected substrates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(DESIGNS))
@pytest.mark.parametrize("n", [1, 3, 5, 9])
def test_disconnected_substrate_restarts_identically(name, n):
    """Every frontier death must replay the twin's restart draws.

    On a disconnected graph the frontier empties before the budget —
    repeatedly, and at n == num_nodes every replicate walks every
    component. The batched path must emit the same truncated/restarted
    draw sequence as the sequential twin, including the final restart
    that lands exactly on the budget.
    """
    graph = _disconnected_graph()
    sampler = DESIGNS[name](graph)
    for seed in (0, 1, 2026):
        batched = _assert_batched_matches_twins(sampler, n, 8, seed)
        if n == graph.num_nodes:
            # Full exhaustion: each replicate is a permutation of V.
            for r in range(8):
                assert len(np.unique(batched.nodes[r])) == n


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_overfull_budget_rejected(name):
    graph = _disconnected_graph()
    from repro.exceptions import SamplingError

    with pytest.raises(SamplingError):
        DESIGNS[name](graph).sample_many(graph.num_nodes + 1, 2, rng=0)


def test_disconnected_forest_fire_golden_trajectory():
    """Literal pin: twin and kernel may only drift *together* on purpose.

    PCG64 output is part of numpy's compatibility contract, so this
    sequence is stable; it guards the restart/burn draw order against
    both implementations changing in lockstep by accident.
    """
    graph = _disconnected_graph()
    sampler = ForestFireSampler(graph, forward_prob=0.7)
    batched = sampler.sample_many(9, 2, rng=12345)
    expected = GOLDEN_FF_DISCONNECTED
    assert np.array_equal(batched.nodes, np.asarray(expected)), batched.nodes


GOLDEN_FF_DISCONNECTED = [
    [3, 4, 5, 6, 7, 1, 0, 2, 8],
    [7, 6, 3, 4, 5, 0, 2, 1, 8],
]


# ----------------------------------------------------------------------
# Seeds, storage planes, and engine knobs
# ----------------------------------------------------------------------
def test_bfs_fixed_seed_node_matches_twin():
    graph = _disconnected_graph()
    sampler = BreadthFirstSampler(graph, seed_node=3)
    batched = _assert_batched_matches_twins(sampler, 6, 6, seed=7)
    assert np.all(batched.nodes[:, 0] == 3)


def test_memmap_visited_bitmaps_are_bit_identical(tmp_path):
    """REPRO_SCALE=web routes visited state through memmap bitmaps.

    The storage plane must be invisible to the trajectories: the same
    seed yields the same bytes whether visited bitmaps live in RAM or
    in an unlinked file under the storage root.
    """
    graph = _disconnected_graph()
    for name, factory in DESIGNS.items():
        sampler = factory(graph)
        in_ram = sampler.sample_many(9, 4, rng=99)
        with graph_storage("memmap", directory=tmp_path):
            mapped = sampler.sample_many(9, 4, rng=99)
        assert np.array_equal(in_ram.nodes, mapped.nodes), name


def test_variate_window_does_not_affect_traversals(monkeypatch):
    """Traversal kernels pre-draw per-pop blocks, not windowed variates.

    ``REPRO_VARIATE_WINDOW`` reshapes the walk kernels' variate
    chunking; the traversal designs must be byte-stable under any
    setting of it (their draw order is fixed by the twins' protocol).
    """
    graph = _disconnected_graph()
    for name, factory in DESIGNS.items():
        sampler = factory(graph)
        baseline = sampler.sample_many(9, 4, rng=5)
        for window in ("1", "7", "100000"):
            monkeypatch.setenv("REPRO_VARIATE_WINDOW", window)
            again = sampler.sample_many(9, 4, rng=5)
            assert np.array_equal(baseline.nodes, again.nodes), (
                name,
                window,
            )
        monkeypatch.delenv("REPRO_VARIATE_WINDOW")


def test_forest_fire_draw_horizon_is_not_load_bearing(monkeypatch):
    """Any refill horizon must yield the twins' stream order."""
    import repro.sampling.traversal as traversal

    graph = _disconnected_graph()
    sampler = ForestFireSampler(graph, forward_prob=0.6)
    baseline = sampler.sample_many(9, 4, rng=17)
    assert _FF_DRAW_HORIZON > 1
    for horizon in (1, 2, 3):
        monkeypatch.setattr(traversal, "_FF_DRAW_HORIZON", horizon)
        again = sampler.sample_many(9, 4, rng=17)
        assert np.array_equal(baseline.nodes, again.nodes), horizon


# ----------------------------------------------------------------------
# Without-replacement properties (hypothesis)
# ----------------------------------------------------------------------
@st.composite
def arbitrary_graphs(draw, max_nodes: int = 18):
    """Small graphs, connected or not — isolated nodes included."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    num_edges = draw(st.integers(min_value=0, max_value=2 * num_nodes))
    edges = [
        (u, v)
        for u, v in zip(
            rng.integers(0, num_nodes, size=num_edges),
            rng.integers(0, num_nodes, size=num_edges),
        )
        if u != v
    ]
    if not edges:
        return Graph.empty(num_nodes)
    return Graph.from_edges(num_nodes, np.asarray(edges, dtype=np.int64))


@given(
    arbitrary_graphs(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from(sorted(DESIGNS)),
    st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=60, deadline=None)
def test_traversals_never_revisit_and_grow_monotonically(
    graph, seed, name, forward_prob
):
    """Without-replacement invariant, batched and sequential alike.

    No replicate ever revisits a node, and the visited count grows by
    exactly one per draw (monotone, no gaps) — equivalently every
    output prefix is duplicate-free.
    """
    if name == "forest_fire":
        sampler = ForestFireSampler(graph, forward_prob=forward_prob)
    else:
        sampler = DESIGNS[name](graph)
    n = graph.num_nodes
    batched = _assert_batched_matches_twins(sampler, n, 3, seed)
    for r in range(3):
        row = batched.nodes[r]
        assert len(np.unique(row)) == n, f"replicate {r} revisited a node"
        # visited-count monotonicity: k distinct nodes after k draws
        seen = np.zeros(graph.num_nodes, dtype=bool)
        for k, node in enumerate(row):
            assert not seen[node]
            seen[node] = True
            assert int(seen.sum()) == k + 1
