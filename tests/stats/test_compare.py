"""Tests for category-graph comparison utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.graph import CategoryGraph
from repro.stats import compare_category_graphs


def _graph(weights: np.ndarray, sizes=None, names=None) -> CategoryGraph:
    c = len(weights)
    w = weights.astype(float).copy()
    np.fill_diagonal(w, np.nan)
    return CategoryGraph(
        np.asarray(sizes if sizes is not None else np.ones(c) * 10.0),
        (w + w.T) / 2,
        names=names,
    )


class TestCompare:
    def test_identical_graphs(self):
        rng = np.random.default_rng(0)
        w = rng.random((5, 5))
        g = _graph(w)
        result = compare_category_graphs(g, g)
        assert result.median_weight_relative_error == 0.0
        assert result.weight_rank_correlation == pytest.approx(1.0)
        assert result.top_edge_overlap == 1.0
        assert result.median_size_relative_error == 0.0

    def test_scaled_weights_keep_rank_correlation(self):
        rng = np.random.default_rng(1)
        w = rng.random((6, 6))
        a = _graph(w)
        b = _graph(2 * w)
        result = compare_category_graphs(b, a)
        assert result.weight_rank_correlation == pytest.approx(1.0)
        assert result.median_weight_relative_error == pytest.approx(1.0)

    def test_anticorrelated(self):
        w = np.array(
            [[0, 1, 2, 3], [1, 0, 4, 5], [2, 4, 0, 6], [3, 5, 6, 0]],
            dtype=float,
        )
        a = _graph(w)
        b = _graph(7 - w)  # reversed ordering
        result = compare_category_graphs(b, a)
        assert result.weight_rank_correlation < -0.9

    def test_size_errors(self):
        rng = np.random.default_rng(2)
        w = rng.random((4, 4))
        a = _graph(w, sizes=[10, 10, 10, 10])
        b = _graph(w, sizes=[11, 11, 11, 11])
        result = compare_category_graphs(b, a)
        assert result.median_size_relative_error == pytest.approx(0.1)

    def test_name_mismatch_rejected(self):
        rng = np.random.default_rng(3)
        w = rng.random((3, 3))
        a = _graph(w, names=("x", "y", "z"))
        b = _graph(w, names=("x", "y", "w"))
        with pytest.raises(EstimationError, match="names"):
            compare_category_graphs(b, a)

    def test_no_comparable_pairs_rejected(self):
        w = np.zeros((3, 3))
        a = _graph(w)
        b = _graph(w)
        with pytest.raises(EstimationError, match="comparable"):
            compare_category_graphs(b, a)

    def test_summary_text(self):
        rng = np.random.default_rng(4)
        w = rng.random((4, 4))
        result = compare_category_graphs(_graph(w), _graph(w))
        assert "rank corr" in result.summary()

    def test_end_to_end_estimate_vs_truth(self):
        from repro.core import estimate_category_graph
        from repro.generators import planted_category_graph
        from repro.graph import true_category_graph
        from repro.sampling import UniformIndependenceSampler, observe_star

        graph, partition = planted_category_graph(k=10, scale=40, rng=0)
        truth = true_category_graph(graph, partition)
        sample = UniformIndependenceSampler(graph).sample(20_000, rng=1)
        estimate = estimate_category_graph(
            observe_star(graph, partition, sample),
            population_size=graph.num_nodes,
        )
        result = compare_category_graphs(estimate, truth)
        assert result.median_weight_relative_error < 0.3
        assert result.weight_rank_correlation > 0.8
        assert result.top_edge_overlap >= 0.5
