"""Tests for NRMSE and error metrics (Eq. 17)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.stats import nrmse, nrmse_stack, relative_error


class TestNrmseScalar:
    def test_exact_estimates_zero_error(self):
        assert nrmse(np.array([5.0, 5.0, 5.0]), 5.0) == 0.0

    def test_hand_computed(self):
        # estimates 4 and 6 around truth 5: RMSE = 1, NRMSE = 0.2
        assert nrmse(np.array([4.0, 6.0]), 5.0) == pytest.approx(0.2)

    def test_bias_contributes(self):
        # constant bias of +1 on truth 2 -> NRMSE = 0.5
        assert nrmse(np.array([3.0, 3.0]), 2.0) == pytest.approx(0.5)

    def test_nan_replicates_ignored(self):
        assert nrmse(np.array([4.0, np.nan, 6.0]), 5.0) == pytest.approx(0.2)

    def test_all_nan_gives_nan(self):
        assert np.isnan(nrmse(np.array([np.nan, np.nan]), 5.0))

    def test_zero_truth_rejected(self):
        with pytest.raises(EstimationError):
            nrmse(np.array([1.0]), 0.0)

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            nrmse(np.array([]), 1.0)


class TestNrmseStack:
    def test_elementwise(self):
        stack = np.array([[4.0, 10.0], [6.0, 10.0]])
        truth = np.array([5.0, 10.0])
        values, coverage = nrmse_stack(stack, truth)
        assert values[0] == pytest.approx(0.2)
        assert values[1] == 0.0
        assert np.all(coverage == 1.0)

    def test_coverage_tracks_nans(self):
        stack = np.array([[4.0, np.nan], [6.0, np.nan]])
        truth = np.array([5.0, 10.0])
        values, coverage = nrmse_stack(stack, truth)
        assert coverage[0] == 1.0
        assert coverage[1] == 0.0
        assert np.isnan(values[1])

    def test_zero_truth_gives_nan(self):
        stack = np.array([[1.0], [1.0]])
        values, _ = nrmse_stack(stack, np.array([0.0]))
        assert np.isnan(values[0])

    def test_matrix_shape(self):
        stack = np.ones((3, 2, 2))
        truth = np.ones((2, 2))
        values, coverage = nrmse_stack(stack, truth)
        assert values.shape == (2, 2)
        assert np.all(values == 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            nrmse_stack(np.ones((3, 2)), np.ones(3))


class TestRelativeError:
    def test_basic(self):
        out = relative_error(np.array([1.1, 2.0]), np.array([1.0, 4.0]))
        assert out[0] == pytest.approx(0.1)
        assert out[1] == pytest.approx(0.5)

    def test_zero_truth_nan(self):
        out = relative_error(np.array([1.0]), np.array([0.0]))
        assert np.isnan(out[0])
