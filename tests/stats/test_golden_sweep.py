"""Golden regression: fast sweep paths vs the sequential reference.

``run_nrmse_sweep`` defaults to the fast engines
(``engine="batched"``, ``ladder="incremental"``); the seed algorithms
survive as ``engine="sequential"`` / ``ladder="subset"``. On a fixed
seed and preset-sized world, the two paths must produce **bit-identical**
NRMSE surfaces for every design — including the multigraph union-CSR
walk and the alias-table S-WRW, whose kernels are exercised end-to-end
through the full estimator stack here (the unit-level contracts live in
``tests/sampling/test_equivalence.py``).

The same bar extends to the :mod:`repro.runtime` process executor:
``executor="process", workers=2`` must reproduce the serial fast path
bit for bit, for every registered design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import gnm, planted_category_graph
from repro.sampling import (
    MetropolisHastingsSampler,
    MultigraphRandomWalkSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    StratifiedWeightedWalkSampler,
    UniformIndependenceSampler,
)
from repro.stats import run_nrmse_sweep

LADDER = (40, 120, 360)
REPLICATIONS = 6
SEED = 1234


@pytest.fixture(scope="module")
def world():
    graph, partition = planted_category_graph(k=6, scale=60, rng=7)
    relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=11)
    return graph, partition, relation


DESIGNS = {
    "uis": lambda g, p, rel: UniformIndependenceSampler(g),
    "rw": lambda g, p, rel: RandomWalkSampler(g),
    "mhrw": lambda g, p, rel: MetropolisHastingsSampler(g),
    "rwj": lambda g, p, rel: RandomWalkWithJumpsSampler(g, alpha=6.0),
    "swrw": lambda g, p, rel: StratifiedWeightedWalkSampler(g, p),
    "swrw-alias": lambda g, p, rel: StratifiedWeightedWalkSampler(
        g, p, next_hop="alias"
    ),
    "multigraph": lambda g, p, rel: MultigraphRandomWalkSampler([g, rel]),
}


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_fast_sweep_bit_identical_to_sequential_subset(name, world):
    graph, partition, relation = world
    factory = DESIGNS[name]
    fast = run_nrmse_sweep(
        graph,
        partition,
        factory(graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
    )
    reference = run_nrmse_sweep(
        graph,
        partition,
        factory(graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        engine="sequential",
        ladder="subset",
    )
    assert np.array_equal(fast.sample_sizes, reference.sample_sizes)
    for kind in ("induced", "star"):
        for attr in (
            "size_nrmse",
            "weight_nrmse",
            "size_coverage",
            "weight_coverage",
        ):
            assert np.array_equal(
                getattr(fast, attr)[kind],
                getattr(reference, attr)[kind],
                equal_nan=True,
            ), f"{name}: {attr}[{kind}] diverged from the reference path"


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_process_executor_bit_identical_to_serial_sweep(name, world):
    graph, partition, relation = world
    factory = DESIGNS[name]
    serial = run_nrmse_sweep(
        graph,
        partition,
        factory(graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="serial",
    )
    parallel = run_nrmse_sweep(
        graph,
        partition,
        factory(graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="process",
        workers=2,
    )
    assert np.array_equal(serial.sample_sizes, parallel.sample_sizes)
    for kind in ("induced", "star"):
        for attr in (
            "size_nrmse",
            "weight_nrmse",
            "size_coverage",
            "weight_coverage",
        ):
            assert np.array_equal(
                getattr(serial, attr)[kind],
                getattr(parallel, attr)[kind],
                equal_nan=True,
            ), f"{name}: {attr}[{kind}] diverged between executors"


@pytest.mark.parametrize("workers", (1, 2, 3))
def test_sweep_bit_identical_with_telemetry_enabled(workers, world, tmp_path):
    """The telemetry plane is output-neutral: recording a full trace
    changes no byte of the NRMSE surfaces, at any worker count."""
    from repro.runtime import telemetry_scope
    from repro.runtime.telemetry import (
        validate_metrics_file,
        validate_trace_file,
    )

    graph, partition, relation = world
    factory = DESIGNS["swrw"]
    plain = run_nrmse_sweep(
        graph,
        partition,
        factory(graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
        executor="process",
        workers=workers,
    )
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    with telemetry_scope(trace=trace, metrics=metrics):
        traced = run_nrmse_sweep(
            graph,
            partition,
            factory(graph, partition, relation),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
            executor="process",
            workers=workers,
        )
    assert np.array_equal(plain.sample_sizes, traced.sample_sizes)
    for kind in ("induced", "star"):
        for attr in (
            "size_nrmse",
            "weight_nrmse",
            "size_coverage",
            "weight_coverage",
        ):
            assert np.array_equal(
                getattr(plain, attr)[kind],
                getattr(traced, attr)[kind],
                equal_nan=True,
            ), f"{attr}[{kind}] changed with telemetry enabled"
    assert validate_trace_file(trace) > 0
    validate_metrics_file(metrics)


@pytest.fixture(scope="module")
def mapped_world(tmp_path_factory):
    """The same substrate as ``world``, built out-of-core."""
    from repro.graph.storage import graph_storage

    root = tmp_path_factory.mktemp("memmap-golden")
    with graph_storage("memmap", directory=root):
        graph, partition = planted_category_graph(k=6, scale=60, rng=7)
        relation = gnm(graph.num_nodes, max(graph.num_edges // 3, 1), rng=11)
    return graph, partition, relation


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_memmap_backed_sweep_bit_identical_to_ram(name, world, mapped_world):
    """The golden pin of the storage plane: NRMSE surfaces computed
    from disk-mapped CSR planes equal the in-RAM surfaces bit for bit
    through the full estimator stack."""
    graph, partition, relation = world
    m_graph, m_partition, m_relation = mapped_world
    factory = DESIGNS[name]
    ram = run_nrmse_sweep(
        graph,
        partition,
        factory(graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
    )
    mapped = run_nrmse_sweep(
        m_graph,
        m_partition,
        factory(m_graph, m_partition, m_relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
    )
    assert np.array_equal(ram.sample_sizes, mapped.sample_sizes)
    for kind in ("induced", "star"):
        for attr in (
            "size_nrmse",
            "weight_nrmse",
            "size_coverage",
            "weight_coverage",
        ):
            assert np.array_equal(
                getattr(ram, attr)[kind],
                getattr(mapped, attr)[kind],
                equal_nan=True,
            ), f"{name}: {attr}[{kind}] diverged between storage planes"


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_plane_store_sweep_bit_identical_cold_and_warm(
    name, world, mapped_world, monkeypatch
):
    """The golden pin of the *derived*-plane store: with every
    derivation (arc_sources, arc_labels, union merge, alias tables,
    walk cumsums) forced through the manifest-keyed spill path
    (``REPRO_PLANE_THRESHOLD=0``), the NRMSE surfaces equal the in-RAM
    surfaces bit for bit — on the cold build and again on the warm
    reopen after the in-process memo is dropped."""
    from repro.graph.planes import clear_plane_memo

    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    graph, partition, relation = world
    m_graph, m_partition, m_relation = mapped_world
    factory = DESIGNS[name]
    ram = run_nrmse_sweep(
        graph,
        partition,
        factory(graph, partition, relation),
        LADDER,
        replications=REPLICATIONS,
        rng=SEED,
    )
    surfaces = {}
    for phase in ("cold", "warm"):
        surfaces[phase] = run_nrmse_sweep(
            m_graph,
            m_partition,
            factory(m_graph, m_partition, m_relation),
            LADDER,
            replications=REPLICATIONS,
            rng=SEED,
        )
        clear_plane_memo()  # the warm pass reopens committed planes
    for phase, mapped in surfaces.items():
        assert np.array_equal(ram.sample_sizes, mapped.sample_sizes)
        for kind in ("induced", "star"):
            for attr in (
                "size_nrmse",
                "weight_nrmse",
                "size_coverage",
                "weight_coverage",
            ):
                assert np.array_equal(
                    getattr(ram, attr)[kind],
                    getattr(mapped, attr)[kind],
                    equal_nan=True,
                ), f"{name}/{phase}: {attr}[{kind}] diverged via plane store"
