"""Incremental-vs-subset equivalence for the prefix ladder.

Two contracts from ``repro.stats.prefix``:

* ``IncrementalPrefixLadder.advance`` materializes observations whose
  every field equals ``observe_*(...).subset_draws(np.arange(size))``;
* ``IncrementalPrefixLadder.estimates`` (the sweep fast path) returns
  estimates bit-for-bit equal to the :mod:`repro.core` estimator
  families evaluated on those subset observations — for all four
  families, across designs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.category_size import estimate_sizes_induced, estimate_sizes_star
from repro.core.edge_weight import estimate_weights_induced, estimate_weights_star
from repro.exceptions import EstimationError
from repro.generators import planted_category_graph
from repro.sampling import (
    MetropolisHastingsSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    UniformIndependenceSampler,
    WeightedRandomWalkSampler,
    observe_both,
    observe_induced,
    observe_star,
)
from repro.stats import (
    IncrementalPrefixLadder,
    run_nrmse_sweep,
    run_nrmse_sweep_from_samples,
)

LADDER = (37, 150, 600, 2000)


@pytest.fixture(scope="module")
def model():
    return planted_category_graph(k=8, scale=60, rng=0)


def _samples(model, n=2000):
    graph, partition = model
    arc_weights = np.abs(np.sin(np.arange(len(graph.indices)))) + 0.5
    return {
        "uis": UniformIndependenceSampler(graph).sample(n, rng=1),
        "rw": RandomWalkSampler(graph).sample(n, rng=2),
        "mhrw": MetropolisHastingsSampler(graph).sample(n, rng=3),
        "wrw": WeightedRandomWalkSampler(graph, arc_weights).sample(n, rng=4),
        "rwj": RandomWalkWithJumpsSampler(graph, alpha=5.0).sample(n, rng=5),
    }


def _eq(a, b):
    a, b = np.asarray(a), np.asarray(b)
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        return np.array_equal(a, b, equal_nan=True)
    return np.array_equal(a, b)


class TestObservationTwins:
    @pytest.mark.parametrize("design", ["uis", "rw", "mhrw", "wrw", "rwj"])
    def test_advance_equals_subset_draws(self, model, design):
        graph, partition = model
        sample = _samples(model)[design]
        induced_full = observe_induced(graph, partition, sample)
        star_full = observe_star(graph, partition, sample)
        ladder = IncrementalPrefixLadder(graph, partition, sample)
        for size in LADDER:
            prefix = np.arange(size)
            induced_inc, star_inc = ladder.advance(size)
            induced_sub = induced_full.subset_draws(prefix)
            star_sub = star_full.subset_draws(prefix)
            for field in (
                "num_draws",
                "draw_to_distinct",
                "distinct_nodes",
                "distinct_categories",
                "distinct_multiplicities",
                "distinct_weights",
                "uniform",
                "design",
            ):
                assert _eq(
                    getattr(induced_inc, field), getattr(induced_sub, field)
                ), (design, size, field)
                assert _eq(getattr(star_inc, field), getattr(star_sub, field))
            assert _eq(induced_inc.induced_edges, induced_sub.induced_edges)
            for field in (
                "distinct_degrees",
                "neighbor_indptr",
                "neighbor_categories",
                "neighbor_counts",
            ):
                assert _eq(getattr(star_inc, field), getattr(star_sub, field))

    def test_observe_both_matches_separate_calls(self, model):
        graph, partition = model
        sample = _samples(model)["rw"]
        induced, star = observe_both(graph, partition, sample)
        induced_ref = observe_induced(graph, partition, sample)
        star_ref = observe_star(graph, partition, sample)
        assert _eq(induced.induced_edges, induced_ref.induced_edges)
        assert _eq(star.neighbor_counts, star_ref.neighbor_counts)
        assert _eq(star.neighbor_categories, star_ref.neighbor_categories)
        assert _eq(star.distinct_degrees, star_ref.distinct_degrees)


class TestEstimateEquivalence:
    @pytest.mark.parametrize("design", ["uis", "rw", "mhrw", "wrw", "rwj"])
    def test_all_four_families_bit_for_bit(self, model, design):
        """Property: incremental aggregates == subset_draws estimates."""
        graph, partition = model
        sample = _samples(model)[design]
        induced_full = observe_induced(graph, partition, sample)
        star_full = observe_star(graph, partition, sample)
        ladder = IncrementalPrefixLadder(graph, partition, sample)
        n_pop = graph.num_nodes
        for size in LADDER:
            prefix = np.arange(size)
            induced_obs = induced_full.subset_draws(prefix)
            star_obs = star_full.subset_draws(prefix)
            rung = ladder.estimates(size, n_pop)
            expected_sizes_induced = estimate_sizes_induced(induced_obs, n_pop)
            expected_sizes_star = estimate_sizes_star(star_obs, n_pop)
            assert _eq(rung.sizes_induced, expected_sizes_induced), (design, size)
            assert _eq(rung.sizes_star, expected_sizes_star), (design, size)
            assert _eq(
                rung.weights_induced, estimate_weights_induced(induced_obs)
            ), (design, size)
            plugin = np.where(
                np.isfinite(expected_sizes_star),
                expected_sizes_star,
                expected_sizes_induced,
            )
            assert _eq(
                rung.weights_star(plugin),
                estimate_weights_star(star_obs, plugin),
            ), (design, size)

    def test_global_mean_degree_model(self, model):
        graph, partition = model
        sample = _samples(model)["rw"]
        star_full = observe_star(graph, partition, sample)
        ladder = IncrementalPrefixLadder(graph, partition, sample)
        for size in LADDER:
            star_obs = star_full.subset_draws(np.arange(size))
            rung = ladder.estimates(
                size, graph.num_nodes, mean_degree_model="global"
            )
            assert _eq(
                rung.sizes_star,
                estimate_sizes_star(
                    star_obs, graph.num_nodes, mean_degree_model="global"
                ),
            )

    def test_unknown_mean_degree_model_rejected(self, model):
        graph, partition = model
        ladder = IncrementalPrefixLadder(
            graph, partition, _samples(model)["uis"]
        )
        with pytest.raises(EstimationError, match="mean_degree_model"):
            ladder.estimates(100, graph.num_nodes, mean_degree_model="banana")

    def test_prefix_sizes_must_increase(self, model):
        graph, partition = model
        ladder = IncrementalPrefixLadder(graph, partition, _samples(model)["uis"])
        ladder.estimates(100, graph.num_nodes)
        with pytest.raises(EstimationError, match="increase"):
            ladder.estimates(100, graph.num_nodes)
        with pytest.raises(EstimationError, match="increase"):
            ladder.estimates(50, graph.num_nodes)

    def test_prefix_beyond_sample_rejected(self, model):
        graph, partition = model
        ladder = IncrementalPrefixLadder(graph, partition, _samples(model)["uis"])
        with pytest.raises(EstimationError, match="outside"):
            ladder.estimates(10_000, graph.num_nodes)


class TestSweepEquivalence:
    def test_incremental_ladder_matches_subset_ladder(self, model):
        graph, partition = model
        walks = [
            RandomWalkSampler(graph).sample(2000, rng=seed) for seed in range(5)
        ]
        fast = run_nrmse_sweep_from_samples(
            graph, partition, walks, LADDER, ladder="incremental"
        )
        reference = run_nrmse_sweep_from_samples(
            graph, partition, walks, LADDER, ladder="subset"
        )
        for kind in ("induced", "star"):
            assert _eq(fast.size_nrmse[kind], reference.size_nrmse[kind])
            assert _eq(fast.weight_nrmse[kind], reference.weight_nrmse[kind])
            assert _eq(fast.size_coverage[kind], reference.size_coverage[kind])
            assert _eq(
                fast.weight_coverage[kind], reference.weight_coverage[kind]
            )

    def test_batched_engine_matches_sequential(self, model):
        graph, partition = model
        fast = run_nrmse_sweep(
            graph,
            partition,
            lambda: RandomWalkSampler(graph),
            LADDER,
            replications=6,
            rng=0,
        )
        reference = run_nrmse_sweep(
            graph,
            partition,
            lambda: RandomWalkSampler(graph),
            LADDER,
            replications=6,
            rng=0,
            engine="sequential",
            ladder="subset",
        )
        for kind in ("induced", "star"):
            assert _eq(fast.size_nrmse[kind], reference.size_nrmse[kind])
            assert _eq(fast.weight_nrmse[kind], reference.weight_nrmse[kind])

    def test_sampler_instance_accepted(self, model):
        graph, partition = model
        by_instance = run_nrmse_sweep(
            graph, partition, RandomWalkSampler(graph), (200,),
            replications=3, rng=1,
        )
        by_factory = run_nrmse_sweep(
            graph, partition, lambda: RandomWalkSampler(graph), (200,),
            replications=3, rng=1,
        )
        assert _eq(
            by_instance.size_nrmse["star"], by_factory.size_nrmse["star"]
        )

    def test_unknown_engine_and_ladder_rejected(self, model):
        graph, partition = model
        with pytest.raises(EstimationError, match="engine"):
            run_nrmse_sweep(
                graph, partition, RandomWalkSampler(graph), (100,),
                replications=2, engine="banana",
            )
        walks = [RandomWalkSampler(graph).sample(200, rng=0)]
        with pytest.raises(EstimationError, match="ladder"):
            run_nrmse_sweep_from_samples(
                graph, partition, walks, (100,), ladder="banana"
            )
