"""Tests for the NRMSE sweep engine and percentile edges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.generators import planted_category_graph
from repro.graph import true_category_graph
from repro.sampling import NodeSample, RandomWalkSampler, UniformIndependenceSampler
from repro.stats import (
    percentile_edge,
    positive_weight_pairs,
    run_nrmse_sweep,
    run_nrmse_sweep_from_samples,
)


@pytest.fixture(scope="module")
def model():
    graph, partition = planted_category_graph(k=8, scale=60, rng=0)
    return graph, partition


class TestPercentileEdges:
    def test_low_below_high(self, model):
        graph, partition = model
        truth = true_category_graph(graph, partition)
        lo = percentile_edge(truth, 25)
        hi = percentile_edge(truth, 75)
        assert truth.weights[lo] <= truth.weights[hi]

    def test_extremes(self, model):
        graph, partition = model
        truth = true_category_graph(graph, partition)
        pairs = positive_weight_pairs(truth)
        weights = truth.weights[pairs[:, 0], pairs[:, 1]]
        assert truth.weights[percentile_edge(truth, 0)] == weights.min()
        assert truth.weights[percentile_edge(truth, 100)] == weights.max()

    def test_invalid_percentile(self, model):
        graph, partition = model
        truth = true_category_graph(graph, partition)
        with pytest.raises(EstimationError):
            percentile_edge(truth, 150)

    def test_positive_pairs_all_positive(self, model):
        graph, partition = model
        truth = true_category_graph(graph, partition)
        pairs = positive_weight_pairs(truth)
        assert np.all(truth.weights[pairs[:, 0], pairs[:, 1]] > 0)


class TestSweep:
    def test_nrmse_decreases_with_sample_size(self, model):
        graph, partition = model
        sweep = run_nrmse_sweep(
            graph,
            partition,
            lambda: UniformIndependenceSampler(graph),
            (200, 2000, 20_000),
            replications=6,
            rng=0,
        )
        largest = int(np.argmax(sweep.truth.sizes))
        for kind in ("induced", "star"):
            curve = sweep.size_nrmse[kind][:, largest]
            assert curve[-1] < curve[0]

    def test_shapes(self, model):
        graph, partition = model
        sweep = run_nrmse_sweep(
            graph,
            partition,
            lambda: UniformIndependenceSampler(graph),
            (100, 500),
            replications=3,
            rng=1,
        )
        c = partition.num_categories
        assert sweep.size_nrmse["star"].shape == (2, c)
        assert sweep.weight_nrmse["induced"].shape == (2, c, c)
        assert sweep.size_coverage["induced"].shape == (2, c)

    def test_medians(self, model):
        graph, partition = model
        sweep = run_nrmse_sweep(
            graph,
            partition,
            lambda: UniformIndependenceSampler(graph),
            (500,),
            replications=3,
            rng=2,
        )
        med = sweep.median_size_nrmse("star")
        assert med.shape == (1,)
        assert np.isfinite(med[0])
        med_w = sweep.median_weight_nrmse("induced")
        assert med_w.shape == (1,)

    def test_from_walk_samples(self, model):
        graph, partition = model
        walks = [
            RandomWalkSampler(graph).sample(2000, rng=seed) for seed in range(4)
        ]
        sweep = run_nrmse_sweep_from_samples(
            graph, partition, walks, (200, 2000)
        )
        assert np.all(np.isfinite(sweep.median_size_nrmse("induced")))

    def test_short_samples_rejected(self, model):
        graph, partition = model
        walks = [RandomWalkSampler(graph).sample(100, rng=0)]
        with pytest.raises(EstimationError, match="at least"):
            run_nrmse_sweep_from_samples(graph, partition, walks, (200,))

    def test_empty_samples_rejected(self, model):
        graph, partition = model
        with pytest.raises(EstimationError):
            run_nrmse_sweep_from_samples(graph, partition, [], (100,))

    def test_bad_plugin_rejected(self, model):
        graph, partition = model
        walks = [UniformIndependenceSampler(graph).sample(200, rng=0)]
        with pytest.raises(EstimationError, match="plugin"):
            run_nrmse_sweep_from_samples(
                graph, partition, walks, (100,), weight_size_plugin="banana"
            )

    def test_true_plugin_beats_estimated(self, model):
        """Oracle sizes in Eq. (9) should not do worse than estimated."""
        graph, partition = model
        walks = [
            UniformIndependenceSampler(graph).sample(3000, rng=seed)
            for seed in range(6)
        ]
        with_truth = run_nrmse_sweep_from_samples(
            graph, partition, walks, (3000,), weight_size_plugin="true"
        )
        with_star = run_nrmse_sweep_from_samples(
            graph, partition, walks, (3000,), weight_size_plugin="star"
        )
        med_truth = with_truth.median_weight_nrmse("star")[0]
        med_star = with_star.median_weight_nrmse("star")[0]
        assert med_truth <= med_star * 1.35  # allow noise, forbid blowup

    def test_bad_sizes_rejected(self, model):
        graph, partition = model
        with pytest.raises(EstimationError):
            run_nrmse_sweep(
                graph,
                partition,
                lambda: UniformIndependenceSampler(graph),
                (),
                replications=2,
            )
