"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale is None
        assert args.seed == 0

    def test_run_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig3a", "--scale", "small", "--seed", "3", "--out", str(tmp_path)]
        )
        assert args.scale == "small"
        assert args.seed == 3

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3a", "--scale", "huge"])


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(experiment_ids())

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_table1_and_save(self, tmp_path, capsys):
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert (tmp_path / "table1.txt").exists()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestExperimentCommand:
    def test_parser_accepts_runtime_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "experiment", "fig6",
                "--workers", "3",
                "--checkpoint", str(tmp_path),
                "--resume",
            ]
        )
        assert args.command == "experiment"
        assert args.experiment == "fig6"
        assert args.workers == 3
        assert args.resume is True

    def test_show_plan_lists_cells(self, capsys):
        assert main(["experiment", "fig6", "--show-plan"]) == 0
        out = capsys.readouterr().out
        assert "plan fig6" in out
        for crawl in ("MHRW09", "RW09", "UIS09", "RW10", "S-WRW10"):
            assert crawl in out
        assert "[sweep]" in out

    def test_show_plan_marks_compute_cells(self, capsys):
        assert main(["experiment", "table1", "--show-plan"]) == 0
        assert "[compute]" in capsys.readouterr().out

    def test_runs_and_saves_like_run(self, tmp_path, capsys):
        assert main(["experiment", "table1", "--out", str(tmp_path)]) == 0
        assert "table1" in capsys.readouterr().out
        assert (tmp_path / "table1.txt").exists()

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig6", "--resume"])
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_unknown_experiment_errors(self, capsys):
        assert main(["experiment", "fig99", "--show-plan"]) == 1
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_non_positive_workers_rejected(self, capsys, value):
        """--workers shares the REPRO_WORKERS >= 1 contract."""
        assert main(["run", "table1", "--workers", value]) == 1
        assert "--workers must be >= 1" in capsys.readouterr().err
        assert main(["experiment", "table1", "--workers", value]) == 1
        assert "--workers must be >= 1" in capsys.readouterr().err
