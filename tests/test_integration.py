"""End-to-end integration grid.

Every sampling design x measurement scenario x estimator family, run on
one shared synthetic graph, must produce sane estimates. This is the
"does the whole pipeline hold together" net under the unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    estimate_category_graph,
    estimate_sizes_induced,
    estimate_sizes_star,
    estimate_weights_induced,
    estimate_weights_star,
)
from repro.generators import planted_category_graph
from repro.graph import true_category_graph
from repro.sampling import (
    MetropolisHastingsSampler,
    MultigraphRandomWalkSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    StratifiedWeightedWalkSampler,
    UniformIndependenceSampler,
    WeightedIndependenceSampler,
    observe_induced,
    observe_star,
)

SAMPLE_SIZE = 15_000


@pytest.fixture(scope="module")
def world():
    graph, partition = planted_category_graph(k=10, alpha=0.5, scale=30, rng=0)
    truth = true_category_graph(graph, partition)
    return graph, partition, truth


def _samplers(graph, partition):
    return {
        "uis": UniformIndependenceSampler(graph),
        "wis": WeightedIndependenceSampler(graph),
        "rw": RandomWalkSampler(graph),
        "mhrw": MetropolisHastingsSampler(graph),
        "rwj": RandomWalkWithJumpsSampler(graph, alpha=5.0),
        "swrw": StratifiedWeightedWalkSampler(graph, partition),
        "multigraph": MultigraphRandomWalkSampler([graph]),
    }


DESIGNS = ("uis", "wis", "rw", "mhrw", "rwj", "swrw", "multigraph")


@pytest.mark.parametrize("design", DESIGNS)
def test_size_estimation_grid(world, design):
    graph, partition, truth = world
    sampler = _samplers(graph, partition)[design]
    sample = sampler.sample(SAMPLE_SIZE, rng=1)
    n = graph.num_nodes
    induced = estimate_sizes_induced(
        observe_induced(graph, partition, sample), n
    )
    star = estimate_sizes_star(observe_star(graph, partition, sample), n)
    big = truth.sizes >= 0.02 * n  # relative error meaningful
    for estimates, kind in ((induced, "induced"), (star, "star")):
        finite = np.isfinite(estimates[big])
        assert finite.all(), (design, kind)
        rel = np.abs(estimates[big] - truth.sizes[big]) / truth.sizes[big]
        assert np.all(rel < 0.5), (design, kind, rel)


@pytest.mark.parametrize("design", DESIGNS)
def test_weight_estimation_grid(world, design):
    graph, partition, truth = world
    sampler = _samplers(graph, partition)[design]
    sample = sampler.sample(SAMPLE_SIZE, rng=2)
    w_induced = estimate_weights_induced(
        observe_induced(graph, partition, sample)
    )
    w_star = estimate_weights_star(
        observe_star(graph, partition, sample), truth.sizes
    )
    mask = np.isfinite(truth.weights) & (truth.weights > 0)
    # Median relative error across pairs must be bounded for star...
    rel_star = np.abs(w_star[mask] - truth.weights[mask]) / truth.weights[mask]
    assert np.nanmedian(rel_star) < 0.6, design
    # ...and induced must at least produce finite estimates on most pairs.
    finite_fraction = np.isfinite(w_induced[mask]).mean()
    assert finite_fraction > 0.9, design


@pytest.mark.parametrize("design", ("uis", "rw", "swrw"))
def test_full_pipeline_via_high_level_api(world, design):
    graph, partition, truth = world
    sampler = _samplers(graph, partition)[design]
    sample = sampler.sample(SAMPLE_SIZE, rng=3)
    obs = observe_star(graph, partition, sample)
    estimate = estimate_category_graph(obs, population_size=graph.num_nodes)
    assert estimate.names == truth.names
    # Size totals land near N (the induced path is a ratio estimator, the
    # star path nearly so).
    assert abs(np.nansum(estimate.sizes) - graph.num_nodes) < 0.25 * graph.num_nodes
    # The heaviest true edge must be detected among the top estimates.
    true_top = {frozenset((a, b)) for a, b, _ in truth.top_edges(5)}
    est_top = {frozenset((a, b)) for a, b, _ in estimate.top_edges(10)}
    assert true_top & est_top, design


def test_estimators_never_see_the_graph(world):
    """Estimator inputs are observations only — deleting the graph after
    observation must not affect estimation (no hidden references)."""
    graph, partition, truth = world
    sample = UniformIndependenceSampler(graph).sample(5000, rng=4)
    obs_star = observe_star(graph, partition, sample)
    obs_induced = observe_induced(graph, partition, sample)
    del graph
    sizes = estimate_sizes_star(obs_star, partition.num_nodes)
    weights = estimate_weights_induced(obs_induced)
    assert np.isfinite(sizes).any()
    assert np.isfinite(weights).any()


def test_thinned_walk_still_consistent(world):
    graph, partition, truth = world
    walk = RandomWalkSampler(graph).sample(40_000, rng=5).thin(4)
    obs = observe_star(graph, partition, walk)
    sizes = estimate_sizes_star(obs, graph.num_nodes)
    big = truth.sizes >= 0.02 * graph.num_nodes
    rel = np.abs(sizes[big] - truth.sizes[big]) / truth.sizes[big]
    assert np.all(rel < 0.5)


def test_combined_walks_reduce_error(world):
    """Concatenating independent walks must not hurt (usually helps)."""
    graph, partition, truth = world
    single = RandomWalkSampler(graph).sample(4000, rng=6)
    combined = single
    for seed in (7, 8, 9):
        combined = combined.concat(RandomWalkSampler(graph).sample(4000, rng=seed))
    big = int(np.argmax(truth.sizes))

    def error(sample):
        obs = observe_star(graph, partition, sample)
        est = estimate_sizes_star(obs, graph.num_nodes)
        return abs(est[big] - truth.sizes[big]) / truth.sizes[big]

    assert error(combined) <= error(single) * 1.5
