"""Tests for RNG plumbing and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    EstimationError,
    ExperimentError,
    GenerationError,
    GraphError,
    PartitionError,
    ReproError,
    SamplingError,
)
from repro.rng import derive_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        streams = spawn_rngs(0, 5)
        assert len(streams) == 5

    def test_independence(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_reproducible(self):
        first = [g.random() for g in spawn_rngs(3, 4)]
        second = [g.random() for g in spawn_rngs(3, 4)]
        assert first == second

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveRng:
    def test_tag_determinism(self):
        a = derive_rng(5, 1, 2).random(3)
        b = derive_rng(5, 1, 2).random(3)
        assert np.array_equal(a, b)

    def test_different_tags_differ(self):
        a = derive_rng(5, 1).random(3)
        b = derive_rng(5, 2).random(3)
        assert not np.array_equal(a, b)

    def test_accepts_none(self):
        assert isinstance(derive_rng(None, 1), np.random.Generator)

    def test_accepts_generator(self):
        gen = np.random.default_rng(0)
        assert isinstance(derive_rng(gen, 1), np.random.Generator)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            PartitionError,
            SamplingError,
            EstimationError,
            GenerationError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catchable_individually(self):
        with pytest.raises(GraphError):
            raise GraphError("specific")


class TestPackageSurface:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_lazy_exports(self):
        import repro

        assert callable(repro.estimate_category_graph)
        assert callable(repro.planted_category_graph)

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_symbol

    def test_examples_compile(self):
        import py_compile
        from pathlib import Path

        for script in Path(__file__).resolve().parents[1].glob("examples/*.py"):
            py_compile.compile(str(script), doraise=True)
