"""Tests for the category-graph ASCII heatmap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.graph import CategoryGraph
from repro.viz import weight_heatmap


def _graph(c: int = 5, seed: int = 0) -> CategoryGraph:
    rng = np.random.default_rng(seed)
    w = rng.random((c, c)) * 0.1
    w = (w + w.T) / 2
    np.fill_diagonal(w, np.nan)
    return CategoryGraph(
        np.arange(1, c + 1, dtype=float) * 10,
        w,
        names=tuple(f"cat{i}" for i in range(c)),
    )


class TestWeightHeatmap:
    def test_renders_all_rows(self):
        text = weight_heatmap(_graph(5))
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 5

    def test_diagonal_marker(self):
        text = weight_heatmap(_graph(4))
        for i, line in enumerate(l for l in text.splitlines() if "|" in l):
            body = line.split("|")[1]
            assert body[i] == "\\"

    def test_custom_order(self):
        g = _graph(4)
        text = weight_heatmap(g, order=np.array([3, 2, 1, 0]))
        first_label = text.splitlines()[0].split("|")[0].strip()
        assert first_label == "cat3"

    def test_bad_order_rejected(self):
        with pytest.raises(EstimationError, match="permutation"):
            weight_heatmap(_graph(4), order=np.array([0, 0, 1, 2]))

    def test_max_categories_truncates(self):
        text = weight_heatmap(_graph(10), max_categories=4)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 4
        # Heaviest (largest-size) categories kept: sizes ascend with index.
        assert "cat9" in text

    def test_zero_weights_blank(self):
        w = np.full((3, 3), np.nan)
        w[0, 1] = w[1, 0] = 0.5
        w[0, 2] = w[2, 0] = 0.0
        g = CategoryGraph(np.ones(3), w)
        text = weight_heatmap(g)
        rows = [line.split("|")[1] for line in text.splitlines() if "|" in line]
        # The single positive weight renders as a non-blank shade...
        assert rows[0][1] != " "
        # ...and the zero weight stays blank.
        assert rows[0][2] == " "

    def test_single_category_rejected(self):
        g = CategoryGraph(np.ones(1), np.full((1, 1), np.nan))
        with pytest.raises(EstimationError):
            weight_heatmap(g)

    def test_all_zero_rejected(self):
        w = np.zeros((3, 3))
        np.fill_diagonal(w, np.nan)
        g = CategoryGraph(np.ones(3), w)
        with pytest.raises(EstimationError, match="positive"):
            weight_heatmap(g)

    def test_legend_present(self):
        assert "log10 w" in weight_heatmap(_graph(3))
