"""Tests for ASCII charts and series export."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.viz import ascii_chart, format_table, write_series_csv, write_series_json


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"a": ([1, 10, 100], [0.5, 0.2, 0.1]), "b": ([1, 10], [1.0, 0.3])},
            title="demo",
        )
        assert "demo" in chart
        assert "o a" in chart
        assert "x b" in chart

    def test_handles_empty(self):
        assert "(no finite data)" in ascii_chart({}, title="t")

    def test_skips_nonfinite(self):
        chart = ascii_chart({"a": ([1, 2, 3], [np.nan, 0.5, np.inf])})
        assert "o a" in chart

    def test_skips_nonpositive_on_log(self):
        chart = ascii_chart({"a": ([1, 2], [0.0, 0.5])}, log_y=True)
        assert "o a" in chart

    def test_linear_axes(self):
        chart = ascii_chart(
            {"cdf": ([0.1, 0.2, 0.3], [0.2, 0.6, 1.0])},
            log_x=False,
            log_y=False,
        )
        assert "o cdf" in chart

    def test_constant_series(self):
        chart = ascii_chart({"flat": ([1, 2, 3], [1.0, 1.0, 1.0])})
        assert "o flat" in chart


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ("name", "value"), [("abc", 1.5), ("x", 22)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "---" in lines[2]
        assert "abc" in lines[3]

    def test_float_formatting(self):
        table = format_table(("v",), [(1.23456789e-8,)])
        assert "e-08" in table


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv(path, {"a": ([1, 2], [0.5, 0.25])})
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "x", "y"]
        assert rows[1] == ["a", "1.0", "0.5"]
        assert len(rows) == 3

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "series.json"
        write_series_json(
            path, {"a": ([1], [2])}, metadata={"title": "demo"}
        )
        payload = json.loads(path.read_text())
        assert payload["metadata"]["title"] == "demo"
        assert payload["series"]["a"]["x"] == [1.0]
        assert payload["series"]["a"]["y"] == [2.0]
